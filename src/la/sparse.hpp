// Sparse linear algebra for MNA systems.
//
// SparseMatrix is a triplet accumulator (duplicate entries sum, matching MNA
// stamping) with conversion to sorted row storage. SparseLu performs
// Gaussian elimination on dynamic row lists with diagonal pivoting and a
// one-time minimum-degree-flavored ordering; MNA matrices assembled with a
// gmin on every node diagonal are diagonally dominant enough for this to be
// robust, and the engine falls back to dense LU if a diagonal pivot
// collapses. For the RC-ladder-dominated circuits of this library the
// factor stays near-banded, which is where the SPICE engine's speed
// comes from.
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense.hpp"

namespace sna::la {

/// Triplet-accumulating sparse matrix (square), duplicates summed.
class SparseMatrix {
public:
    explicit SparseMatrix(std::size_t n = 0);

    std::size_t size() const { return n_; }

    /// Accumulate a(r,c) += v (MNA stamp).
    void add(std::size_t r, std::size_t c, double v);

    /// Drop all entries, keep dimension.
    void clear();

    /// y = A x (consolidates duplicates on the fly).
    Vector multiply(const Vector& x) const;

    /// Consolidated rows: per row, sorted unique (col, value) pairs.
    struct Entry {
        std::size_t col;
        double value;
    };
    std::vector<std::vector<Entry>> consolidatedRows() const;

    /// Dense copy, for tests and the dense fallback.
    DenseMatrix toDense() const;

    std::size_t nnz() const { return trips_.size(); }

private:
    struct Triplet {
        std::size_t r, c;
        double v;
    };
    std::size_t n_ = 0;
    std::vector<Triplet> trips_;
};

/// Sparse LU via Gaussian elimination on row lists, diagonal pivoting.
///
/// The elimination order is chosen once from the sparsity pattern with a
/// greedy minimum-degree heuristic; the numeric factorization runs in that
/// order. Throws sna::ConvergenceError when a diagonal pivot is smaller than
/// `pivotTol` — callers are expected to fall back to dense LU (MNA callers
/// guarantee nonzero diagonals via gmin, so this is rare).
class SparseLu {
public:
    explicit SparseLu(const SparseMatrix& a, double pivotTol = 1e-13);

    std::size_t size() const { return n_; }

    Vector solve(const Vector& b) const;

    /// Fill-in statistics: nonzeros in L+U (diagnostic, bench_mor uses it).
    std::size_t factorNnz() const { return factorNnz_; }

private:
    std::size_t n_ = 0;
    std::size_t factorNnz_ = 0;
    // Factor storage in elimination order: for step k, the pivot row
    // (columns > pivot) and the column multipliers below it.
    struct FactorEntry {
        std::size_t index;
        double value;
    };
    std::vector<std::size_t> order_;        // elimination order -> original row
    std::vector<std::size_t> inverseOrder_; // original row -> elimination step
    std::vector<double> pivots_;
    std::vector<std::vector<FactorEntry>> upper_;  // per step: cols (orig idx)
    std::vector<std::vector<FactorEntry>> lower_;  // per step: rows (orig idx)
};

/// Solve A x = b choosing sparse elimination with dense fallback.
Vector solveSparse(const SparseMatrix& a, const Vector& b);

}  // namespace sna::la

#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace sna::la {

SparseMatrix::SparseMatrix(std::size_t n) : n_(n) {}

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
    SNA_REQUIRE(r < n_ && c < n_, "sparse stamp outside matrix");
    if (v == 0.0) return;
    trips_.push_back({r, c, v});
}

void SparseMatrix::clear() { trips_.clear(); }

Vector SparseMatrix::multiply(const Vector& x) const {
    SNA_REQUIRE(x.size() == n_, "dimension mismatch in sparse product");
    Vector y(n_, 0.0);
    for (const auto& t : trips_) y[t.r] += t.v * x[t.c];
    return y;
}

std::vector<std::vector<SparseMatrix::Entry>> SparseMatrix::consolidatedRows()
    const {
    std::vector<std::map<std::size_t, double>> acc(n_);
    for (const auto& t : trips_) acc[t.r][t.c] += t.v;
    std::vector<std::vector<Entry>> rows(n_);
    for (std::size_t r = 0; r < n_; ++r) {
        rows[r].reserve(acc[r].size());
        for (const auto& [c, v] : acc[r]) rows[r].push_back({c, v});
    }
    return rows;
}

DenseMatrix SparseMatrix::toDense() const {
    DenseMatrix m(n_, n_);
    for (const auto& t : trips_) m(t.r, t.c) += t.v;
    return m;
}

namespace {

// Greedy minimum-degree ordering on the symmetrized pattern. Exact external
// degree on the evolving quotient graph would be overkill here; we use the
// static degree refreshed lazily, which is effective for near-banded MNA
// patterns and cheap to compute.
std::vector<std::size_t> minimumDegreeOrder(
    const std::vector<std::vector<SparseMatrix::Entry>>& rows) {
    const std::size_t n = rows.size();
    std::vector<std::vector<std::size_t>> adj(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (const auto& e : rows[r]) {
            if (e.col == r) continue;
            adj[r].push_back(e.col);
            adj[e.col].push_back(r);
        }
    }
    for (auto& a : adj) {
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    std::vector<bool> eliminated(n, false);
    std::vector<std::size_t> order;
    order.reserve(n);
    // Bucket by current degree; degrees only shrink as neighbors are
    // eliminated, so a lazy re-check keeps this O(E log E)-ish.
    std::multimap<std::size_t, std::size_t> byDegree;
    for (std::size_t i = 0; i < n; ++i) byDegree.insert({adj[i].size(), i});
    auto currentDegree = [&](std::size_t v) {
        std::size_t d = 0;
        for (std::size_t u : adj[v]) {
            if (!eliminated[u]) ++d;
        }
        return d;
    };
    while (order.size() < n) {
        auto it = byDegree.begin();
        const std::size_t v = it->second;
        const std::size_t claimed = it->first;
        byDegree.erase(it);
        if (eliminated[v]) continue;
        const std::size_t d = currentDegree(v);
        if (d > claimed) {
            // Stale entry cannot happen (degrees shrink), but guard anyway.
            byDegree.insert({d, v});
            continue;
        }
        eliminated[v] = true;
        order.push_back(v);
        for (std::size_t u : adj[v]) {
            if (!eliminated[u]) byDegree.insert({currentDegree(u), u});
        }
    }
    return order;
}

}  // namespace

SparseLu::SparseLu(const SparseMatrix& a, double pivotTol) : n_(a.size()) {
    const auto rows = a.consolidatedRows();
    order_ = minimumDegreeOrder(rows);
    inverseOrder_.assign(n_, 0);
    for (std::size_t k = 0; k < n_; ++k) inverseOrder_[order_[k]] = k;

    // Working rows as (step-index, value) maps keyed by elimination step of
    // the column, so elimination proceeds monotonically.
    std::vector<std::map<std::size_t, double>> work(n_);
    for (std::size_t r = 0; r < n_; ++r) {
        auto& row = work[inverseOrder_[r]];
        for (const auto& e : rows[r]) row[inverseOrder_[e.col]] += e.value;
    }

    pivots_.assign(n_, 0.0);
    upper_.assign(n_, {});
    lower_.assign(n_, {});

    // Column structure: for step k, which later rows have an entry in column
    // k. Maintained incrementally.
    std::vector<std::vector<std::size_t>> colRows(n_);
    for (std::size_t r = 0; r < n_; ++r) {
        for (const auto& [c, v] : work[r]) {
            if (r > c) colRows[c].push_back(r);
        }
    }

    for (std::size_t k = 0; k < n_; ++k) {
        auto& pivotRow = work[k];
        const auto pit = pivotRow.find(k);
        const double pivot = (pit == pivotRow.end()) ? 0.0 : pit->second;
        if (std::abs(pivot) < pivotTol) {
            throw ConvergenceError("sparse LU: zero diagonal pivot at step " +
                                   std::to_string(k));
        }
        pivots_[k] = pivot;
        auto& up = upper_[k];
        for (const auto& [c, v] : pivotRow) {
            if (c > k && v != 0.0) up.push_back({c, v});
        }
        factorNnz_ += up.size() + 1;

        // Eliminate column k from all later rows holding it.
        auto& targets = colRows[k];
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());
        for (std::size_t r : targets) {
            auto& row = work[r];
            const auto rit = row.find(k);
            if (rit == row.end() || rit->second == 0.0) continue;
            const double mult = rit->second / pivot;
            row.erase(rit);
            lower_[k].push_back({r, mult});
            ++factorNnz_;
            for (const auto& e : up) {
                auto [ins, fresh] = row.try_emplace(e.index, 0.0);
                ins->second -= mult * e.value;
                if (fresh && r > e.index) colRows[e.index].push_back(r);
            }
        }
        pivotRow.clear();
        targets.clear();
    }
}

Vector SparseLu::solve(const Vector& b) const {
    SNA_REQUIRE(b.size() == n_, "rhs size mismatch in sparse solve");
    // Permute into elimination order.
    Vector y(n_);
    for (std::size_t r = 0; r < n_; ++r) y[inverseOrder_[r]] = b[r];
    // Forward: apply stored multipliers.
    for (std::size_t k = 0; k < n_; ++k) {
        const double yk = y[k];
        if (yk == 0.0) continue;
        for (const auto& e : lower_[k]) y[e.index] -= e.value * yk;
    }
    // Backward.
    for (std::size_t kk = n_; kk-- > 0;) {
        double acc = y[kk];
        for (const auto& e : upper_[kk]) acc -= e.value * y[e.index];
        y[kk] = acc / pivots_[kk];
    }
    // Undo permutation.
    Vector x(n_);
    for (std::size_t r = 0; r < n_; ++r) x[r] = y[inverseOrder_[r]];
    return x;
}

Vector solveSparse(const SparseMatrix& a, const Vector& b) {
    try {
        return SparseLu(a).solve(b);
    } catch (const ConvergenceError&) {
        return solveDense(a.toDense(), b);
    }
}

}  // namespace la = sna::la

// Interpolation tables.
//
// Grid1d: piecewise-linear y(x) on a strictly increasing axis.
// Grid2d: bilinear z(x, y) on a rectilinear grid with exact per-patch
// partial derivatives — the storage format of the paper's load-curve tables
// I_DC = f(V_in, V_out) (Eq. (1)) and of the noise-propagation tables.
// Evaluation outside the grid clamps to the border patch (flat
// extrapolation of the edge gradient is deliberately avoided: load curves
// are characterized over the full noise swing, so leaving the grid is a
// characterization bug we clamp instead of amplifying).
#pragma once

#include <cstddef>
#include <vector>

namespace sna::la {

class Grid1d {
public:
    Grid1d() = default;
    Grid1d(std::vector<double> x, std::vector<double> y);

    bool empty() const { return x_.empty(); }
    std::size_t size() const { return x_.size(); }
    const std::vector<double>& xs() const { return x_; }
    const std::vector<double>& ys() const { return y_; }

    double operator()(double x) const;
    double derivative(double x) const;

private:
    std::vector<double> x_;
    std::vector<double> y_;
};

class Grid2d {
public:
    Grid2d() = default;

    /// z has x.size()*y.size() entries, row r = x index, column c = y index,
    /// stored row-major as z[r * y.size() + c].
    Grid2d(std::vector<double> x, std::vector<double> y, std::vector<double> z);

    bool empty() const { return x_.empty(); }
    const std::vector<double>& xs() const { return x_; }
    const std::vector<double>& ys() const { return y_; }

    double at(std::size_t ix, std::size_t iy) const {
        return z_[ix * y_.size() + iy];
    }

    struct Value {
        double z;    ///< interpolated value
        double dzdx; ///< partial wrt first axis (exact on the patch)
        double dzdy; ///< partial wrt second axis
    };

    /// Bilinear interpolation with partials; clamps outside the grid.
    Value eval(double x, double y) const;

    double operator()(double x, double y) const { return eval(x, y).z; }

private:
    std::vector<double> x_;
    std::vector<double> y_;
    std::vector<double> z_;
};

}  // namespace sna::la

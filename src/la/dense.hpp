// Dense linear algebra: row-major matrix and LU factorization.
//
// Sized for the workloads of this library: MNA systems of a few hundred
// unknowns (full SPICE on extracted clusters) down to ~10 unknowns (the
// cluster macromodel engine). LU uses partial pivoting; factorizations are
// value types so an engine can keep one per Newton iteration without heap
// churn beyond the pivot/value vectors.
#pragma once

#include <cstddef>
#include <vector>

namespace sna::la {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class DenseMatrix {
public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    static DenseMatrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }

    /// Reset every entry to zero, keeping the shape (hot path in Newton).
    void setZero();

    /// y = A x.
    Vector multiply(const Vector& x) const;

    /// C = A B.
    DenseMatrix multiply(const DenseMatrix& other) const;

    DenseMatrix transposed() const;

    /// Max-abs entry, used by tests as a matrix norm.
    double maxAbs() const;

    const std::vector<double>& data() const { return data_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// LU factorization with partial pivoting (Doolittle).
class DenseLu {
public:
    /// Factorizes a copy of `a`. Throws sna::ConvergenceError if the matrix
    /// is numerically singular (pivot below `pivotTol`).
    explicit DenseLu(DenseMatrix a, double pivotTol = 1e-14);

    std::size_t size() const { return lu_.rows(); }

    /// Solve A x = b.
    Vector solve(const Vector& b) const;

    /// In-place solve, b is replaced by x (no allocation).
    void solveInPlace(Vector& b) const;

    /// Determinant of A (with pivot signs).
    double determinant() const;

private:
    DenseMatrix lu_;
    std::vector<std::size_t> perm_;
    int permSign_ = 1;
};

/// Convenience one-shot solve.
Vector solveDense(DenseMatrix a, const Vector& b);

/// Euclidean norm and helpers used by the Newton loops.
double norm2(const Vector& v);
double normInf(const Vector& v);

}  // namespace sna::la

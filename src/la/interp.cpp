#include "la/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sna::la {

namespace {
// Index of the patch containing x: largest i with axis[i] <= x, clamped to
// [0, n-2] so border queries use the edge patch.
std::size_t patchIndex(const std::vector<double>& axis, double x) {
    SNA_REQUIRE(axis.size() >= 2, "interpolation axis needs >= 2 points");
    const auto it = std::upper_bound(axis.begin(), axis.end(), x);
    std::size_t i = (it == axis.begin()) ? 0 : (it - axis.begin() - 1);
    return std::min(i, axis.size() - 2);
}

void checkAxis(const std::vector<double>& axis) {
    for (std::size_t i = 1; i < axis.size(); ++i) {
        SNA_REQUIRE(axis[i] > axis[i - 1],
                    "interpolation axis must be strictly increasing");
    }
}
}  // namespace

Grid1d::Grid1d(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
    SNA_REQUIRE(x_.size() == y_.size(), "grid1d size mismatch");
    SNA_REQUIRE(x_.size() >= 2, "grid1d needs >= 2 points");
    checkAxis(x_);
}

double Grid1d::operator()(double x) const {
    const std::size_t i = patchIndex(x_, x);
    const double xc = std::clamp(x, x_.front(), x_.back());
    const double f = (xc - x_[i]) / (x_[i + 1] - x_[i]);
    return y_[i] + f * (y_[i + 1] - y_[i]);
}

double Grid1d::derivative(double x) const {
    const std::size_t i = patchIndex(x_, x);
    return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

Grid2d::Grid2d(std::vector<double> x, std::vector<double> y,
               std::vector<double> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
    SNA_REQUIRE(x_.size() >= 2 && y_.size() >= 2, "grid2d needs >= 2x2 points");
    SNA_REQUIRE(z_.size() == x_.size() * y_.size(), "grid2d payload mismatch");
    checkAxis(x_);
    checkAxis(y_);
}

Grid2d::Value Grid2d::eval(double x, double y) const {
    SNA_REQUIRE(!empty(), "evaluating an empty grid2d");
    const std::size_t ix = patchIndex(x_, x);
    const std::size_t iy = patchIndex(y_, y);
    const double xc = std::clamp(x, x_.front(), x_.back());
    const double yc = std::clamp(y, y_.front(), y_.back());
    const double dx = x_[ix + 1] - x_[ix];
    const double dy = y_[iy + 1] - y_[iy];
    const double fx = (xc - x_[ix]) / dx;
    const double fy = (yc - y_[iy]) / dy;

    const double z00 = at(ix, iy);
    const double z10 = at(ix + 1, iy);
    const double z01 = at(ix, iy + 1);
    const double z11 = at(ix + 1, iy + 1);

    Value v;
    v.z = z00 * (1 - fx) * (1 - fy) + z10 * fx * (1 - fy) +
          z01 * (1 - fx) * fy + z11 * fx * fy;
    v.dzdx = ((z10 - z00) * (1 - fy) + (z11 - z01) * fy) / dx;
    v.dzdy = ((z01 - z00) * (1 - fx) + (z11 - z10) * fx) / dy;
    return v;
}

}  // namespace sna::la

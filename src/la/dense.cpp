#include "la/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

void DenseMatrix::setZero() {
    std::fill(data_.begin(), data_.end(), 0.0);
}

Vector DenseMatrix::multiply(const Vector& x) const {
    SNA_REQUIRE(x.size() == cols_, "dimension mismatch in matrix-vector product");
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = &data_[r * cols_];
        for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
    SNA_REQUIRE(cols_ == other.rows_, "dimension mismatch in matrix product");
    DenseMatrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c) {
                out(r, c) += a * other(k, c);
            }
        }
    }
    return out;
}

DenseMatrix DenseMatrix::transposed() const {
    DenseMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
}

double DenseMatrix::maxAbs() const {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
}

DenseLu::DenseLu(DenseMatrix a, double pivotTol) : lu_(std::move(a)) {
    SNA_REQUIRE(lu_.rows() == lu_.cols(), "LU needs a square matrix");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest magnitude in column k at/below the diagonal.
        std::size_t pivot = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double v = std::abs(lu_(r, k));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < pivotTol) {
            throw ConvergenceError(
                "singular matrix in dense LU (pivot " + std::to_string(best) +
                " at column " + std::to_string(k) + ")");
        }
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu_(k, c), lu_(pivot, c));
            }
            std::swap(perm_[k], perm_[pivot]);
            permSign_ = -permSign_;
        }
        const double inv = 1.0 / lu_(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu_(r, k) * inv;
            if (factor == 0.0) continue;
            lu_(r, k) = factor;
            for (std::size_t c = k + 1; c < n; ++c) {
                lu_(r, c) -= factor * lu_(k, c);
            }
        }
    }
}

Vector DenseLu::solve(const Vector& b) const {
    Vector x = b;
    solveInPlace(x);
    return x;
}

void DenseLu::solveInPlace(Vector& b) const {
    const std::size_t n = lu_.rows();
    SNA_REQUIRE(b.size() == n, "rhs size mismatch in LU solve");
    // Apply permutation.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
    // Forward substitution (unit lower).
    for (std::size_t i = 0; i < n; ++i) {
        double acc = y[i];
        for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
        y[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
        y[ii] = acc / lu_(ii, ii);
    }
    b = std::move(y);
}

double DenseLu::determinant() const {
    double det = permSign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

Vector solveDense(DenseMatrix a, const Vector& b) {
    return DenseLu(std::move(a)).solve(b);
}

double norm2(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += x * x;
    return std::sqrt(acc);
}

double normInf(const Vector& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
}

}  // namespace sna::la

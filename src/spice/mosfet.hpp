// Level-1 (Shichman–Hodges) MOSFET model.
//
// This is the non-linearity at the heart of the paper: library cells are
// built from these transistors, and the victim driver's restoring current
// I_DC(V_in, V_out) inherits their square-law/triode behavior. Level 1 with
// channel-length modulation and body effect is deliberate — the paper's
// argument only needs a strongly non-linear, physically shaped I-V, not a
// nanometer-accurate one (the proprietary ST device models are substituted
// per DESIGN.md).
#pragma once

namespace sna::spice {

enum class MosType { Nmos, Pmos };

/// Model card (shared by all instances of one device flavor).
struct MosModel {
    MosType type = MosType::Nmos;
    double vt0 = 0.4;      ///< zero-bias threshold magnitude, V
    double kp = 200e-6;    ///< transconductance parameter u0*Cox, A/V^2
    double lambda = 0.05;  ///< channel-length modulation, 1/V
    double gamma = 0.3;    ///< body-effect coefficient, sqrt(V)
    double phi = 0.7;      ///< surface potential, V
    double cox = 8e-3;     ///< gate oxide capacitance, F/m^2
    double cgso = 3e-10;   ///< gate-source overlap, F/m of width
    double cgdo = 3e-10;   ///< gate-drain overlap, F/m of width
    double cj = 1.0e-3;    ///< junction area capacitance, F/m^2
    double cjsw = 1.0e-10; ///< junction sidewall capacitance, F/m
    double ldiff = 0.3e-6; ///< source/drain diffusion extent, m
};

/// Point evaluation of the drain current and its partials, NMOS convention
/// with vds >= 0 (callers handle PMOS reflection and drain/source swap).
struct MosEval {
    double ids = 0.0;   ///< drain current, A (into drain, out of source)
    double gm = 0.0;    ///< d ids / d vgs
    double gds = 0.0;   ///< d ids / d vds
    double gmbs = 0.0;  ///< d ids / d vbs
};

/// Shichman–Hodges equations; `beta` = kp * W / L is passed pre-scaled so
/// the caller owns geometry. Requires vds >= 0.
MosEval evalLevel1(const MosModel& m, double beta, double vgs, double vds,
                   double vbs);

/// Lumped terminal capacitances used for the instance parasitics (constant,
/// worst-case-triode split of the channel charge; see DESIGN.md).
struct MosCaps {
    double cgs = 0.0;
    double cgd = 0.0;
    double cgb = 0.0;
    double cdb = 0.0;
    double csb = 0.0;
};
MosCaps instanceCaps(const MosModel& m, double w, double l);

}  // namespace sna::spice

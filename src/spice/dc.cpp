#include "spice/dc.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::spice {

DcSolution::DcSolution(const Circuit& circuit, MnaMap map, la::Vector x)
    : circuit_(&circuit), map_(std::move(map)), x_(std::move(x)) {}

double DcSolution::voltage(NodeId node) const {
    return map_.voltage(node, x_);
}

double DcSolution::voltage(const std::string& node) const {
    const auto id = circuit_->findNode(node);
    SNA_REQUIRE(id.has_value(), "unknown node '" + node + "'");
    return voltage(*id);
}

double DcSolution::sourceCurrent(const std::string& vsourceName) const {
    const Device* dev = circuit_->findDevice(vsourceName);
    SNA_REQUIRE(dev != nullptr, "unknown device '" + vsourceName + "'");
    const auto* vs = dynamic_cast<const VSource*>(dev);
    SNA_REQUIRE(vs != nullptr, "'" + vsourceName + "' is not a voltage source");
    SNA_REQUIRE(vs->grounded(),
                "sourceCurrent needs a ground-referenced source: " +
                    vsourceName);
    const NodeId pinned = (vs->neg() == kGround) ? vs->pos() : vs->neg();

    EvalContext ctx(map_, x_, nullptr, 0.0, 0.0, Integration::BackwardEuler,
                    /*transient=*/false, /*srcScale=*/1.0, nullptr, nullptr);
    double intoNode = 0.0;
    for (const std::size_t idx : circuit_->devicesAt(pinned)) {
        const Device* d = circuit_->devices()[idx].get();
        if (d == dev) continue;
        intoNode += d->currentInto(pinned, ctx);
    }
    // KCL: source current into the node balances the rest of the circuit.
    double delivered = -intoNode;
    // Report with the source's own polarity (current out of its + pin).
    if (vs->pos() == kGround) delivered = -delivered;
    return delivered;
}

void robustDcSolve(MnaMap& map, la::Vector& x, const DcOptions& options) {
    auto tryNewton = [&](double gmin, double srcScale) {
        map.setGmin(gmin);
        return solveNewton(map, x, /*time=*/0.0, /*dt=*/0.0,
                           Integration::BackwardEuler, /*transient=*/false,
                           srcScale, nullptr, nullptr, options.newton)
            .converged;
    };

    const double gminFinal = 1e-12;
    if (tryNewton(gminFinal, 1.0)) return;

    if (options.gminStepping) {
        log::debug() << "DC: plain Newton failed, trying gmin stepping";
        std::fill(x.begin(), x.end(), 0.0);
        bool ok = true;
        for (double gmin = 1e-3; gmin >= gminFinal / 2; gmin *= 0.1) {
            if (!tryNewton(std::max(gmin, gminFinal), 1.0)) {
                ok = false;
                break;
            }
        }
        if (ok) return;
    }

    if (options.sourceStepping) {
        log::debug() << "DC: gmin stepping failed, trying source stepping";
        std::fill(x.begin(), x.end(), 0.0);
        bool ok = true;
        for (int step = 1; step <= 20; ++step) {
            const double scale = static_cast<double>(step) / 20.0;
            if (!tryNewton(gminFinal, scale)) {
                ok = false;
                break;
            }
        }
        if (ok) return;
    }

    throw ConvergenceError("DC operating point did not converge");
}

DcSolution solveDc(const Circuit& circuit, const DcOptions& options,
                   const la::Vector* warmStart) {
    MnaMap map(circuit);
    la::Vector x(map.unknowns(), 0.0);
    if (warmStart != nullptr) {
        SNA_REQUIRE(warmStart->size() == x.size(),
                    "warm start has wrong dimension");
        x = *warmStart;
    }
    robustDcSolve(map, x, options);
    return DcSolution(circuit, std::move(map), std::move(x));
}

}  // namespace sna::spice

#include "spice/mna.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::spice {

// ------------------------------------------------------------- EvalContext

EvalContext::EvalContext(const MnaMap& map, const la::Vector& x,
                         const la::Vector* xPrev, double time, double dt,
                         Integration method, bool transient, double srcScale,
                         const std::vector<double>* statePrev,
                         std::vector<double>* stateNext)
    : map_(map),
      x_(x),
      xPrev_(xPrev),
      time_(time),
      dt_(dt),
      method_(method),
      transient_(transient),
      srcScale_(srcScale),
      statePrev_(statePrev),
      stateNext_(stateNext) {}

double EvalContext::v(NodeId n) const { return map_.voltage(n, x_); }

double EvalContext::unknown(int index) const {
    SNA_REQUIRE(index >= 0 && static_cast<std::size_t>(index) < x_.size(),
                "unknown index out of range");
    return x_[static_cast<std::size_t>(index)];
}

double EvalContext::vPrev(NodeId n) const {
    SNA_REQUIRE(xPrev_ != nullptr, "no previous time point in this context");
    return map_.voltagePrev(n, *xPrev_);
}

double EvalContext::state(const Device& d, std::size_t slot) const {
    SNA_REQUIRE(statePrev_ != nullptr, "no state storage in this context");
    return (*statePrev_)[map_.stateBaseOf(d) + slot];
}

void EvalContext::setState(const Device& d, std::size_t slot, double v) const {
    SNA_REQUIRE(stateNext_ != nullptr, "no writable state in this context");
    (*stateNext_)[map_.stateBaseOf(d) + slot] = v;
}

int EvalContext::branchRow(const Device& d, std::size_t branch) const {
    return map_.branchBaseOf(d) + static_cast<int>(branch);
}

// ----------------------------------------------------------------- Stamper

Stamper::Stamper(const MnaMap& map, la::SparseMatrix& j, la::Vector& rhs)
    : map_(map), j_(j), rhs_(rhs) {}

void Stamper::dependence(NodeId node, NodeId ctrl, double didv) {
    const int row = map_.indexOf(node);
    if (row < 0) return;
    const int col = map_.indexOf(ctrl);
    if (col >= 0) {
        j_.add(row, col, didv);
    } else {
        rhs_[row] -= didv * map_.knownVoltage(ctrl);
    }
}

void Stamper::conductance(NodeId a, NodeId b, double g) {
    dependence(a, a, +g);
    dependence(a, b, -g);
    dependence(b, b, +g);
    dependence(b, a, -g);
}

void Stamper::current(NodeId n, double i) {
    const int row = map_.indexOf(n);
    if (row >= 0) rhs_[row] += i;
}

void Stamper::norton(NodeId from, NodeId to, double i0,
                     const std::vector<std::pair<NodeId, double>>& partials,
                     const EvalContext& ctx) {
    double linearizedAtPoint = 0.0;
    for (const auto& [ctrl, g] : partials) {
        dependence(from, ctrl, +g);
        dependence(to, ctrl, -g);
        linearizedAtPoint += g * ctx.v(ctrl);
    }
    // Current leaving `from` has constant part (i0 - sum g*v0); move it to
    // the RHS as an injected current.
    const double constPart = i0 - linearizedAtPoint;
    current(from, -constPart);
    current(to, +constPart);
}

void Stamper::branchVoltage(int branch, NodeId pos, NodeId neg, double value) {
    double rhs = value;
    const int ip = map_.indexOf(pos);
    if (ip >= 0) {
        j_.add(branch, ip, +1.0);
    } else {
        rhs -= map_.knownVoltage(pos);
    }
    const int in = map_.indexOf(neg);
    if (in >= 0) {
        j_.add(branch, in, -1.0);
    } else {
        rhs += map_.knownVoltage(neg);
    }
    rhs_[branch] += rhs;
}

void Stamper::branchControl(int branch, NodeId ctrl, double coeff) {
    const int ic = map_.indexOf(ctrl);
    if (ic >= 0) {
        j_.add(branch, ic, coeff);
    } else {
        rhs_[branch] -= coeff * map_.knownVoltage(ctrl);
    }
}

void Stamper::branchCurrentInto(int branch, NodeId pos, NodeId neg) {
    const int ip = map_.indexOf(pos);
    if (ip >= 0) j_.add(ip, branch, +1.0);
    const int in = map_.indexOf(neg);
    if (in >= 0) j_.add(in, branch, -1.0);
}

void Stamper::branchPair(int row, int branchCol, double value) {
    j_.add(row, branchCol, value);
}

void Stamper::branchRhs(int row, double value) { rhs_[row] += value; }

void Stamper::nodeBranch(NodeId n, int branchCol, double coeff) {
    const int row = map_.indexOf(n);
    if (row >= 0) j_.add(row, branchCol, coeff);
}

// ------------------------------------------------------------------ MnaMap

MnaMap::MnaMap(const Circuit& circuit) : circuit_(&circuit) {
    const std::size_t n = circuit.nodeCount();
    index_.assign(n, -1);
    fixed_.assign(n, 0);
    fixedValue_.assign(n, 0.0);
    fixedPrev_.assign(n, 0.0);
    fixedSource_.assign(n, nullptr);
    fixedSign_.assign(n, 1.0);

    // Pass 1: ground-referenced ideal voltage sources pin their free node.
    for (const auto& dev : circuit.devices()) {
        const auto* vs = dynamic_cast<const VSource*>(dev.get());
        if (vs == nullptr || !vs->grounded()) continue;
        const bool posIsFree = (vs->neg() == kGround);
        const NodeId pinned = posIsFree ? vs->pos() : vs->neg();
        SNA_REQUIRE(pinned != kGround, "voltage source shorted to ground: " +
                                           vs->name());
        if (fixed_[pinned]) {
            throw ModelError("node '" + circuit.nodeName(pinned) +
                             "' is driven by two voltage sources ('" +
                             vs->name() + "' and '" +
                             fixedSource_[pinned]->name() + "')");
        }
        fixed_[pinned] = 1;
        fixedSource_[pinned] = vs;
        fixedSign_[pinned] = posIsFree ? +1.0 : -1.0;
    }

    // Pass 2: enumerate unknowns.
    for (NodeId id = 1; id < static_cast<NodeId>(n); ++id) {
        if (!fixed_[id]) index_[id] = static_cast<int>(nodeUnknowns_++);
    }
    unknowns_ = nodeUnknowns_;

    // Pass 3: branch unknowns and state slots.
    for (const auto& dev : circuit.devices()) {
        if (const std::size_t bc = dev->branchCount(); bc > 0) {
            branchBase_[dev.get()] = static_cast<int>(unknowns_);
            unknowns_ += bc;
        }
        if (const std::size_t sc = dev->stateCount(); sc > 0) {
            stateBase_[dev.get()] = stateSlots_;
            stateSlots_ += sc;
        }
    }

    updateFixed(0.0, 1.0);
    commitFixed();
}

double MnaMap::voltage(NodeId n, const la::Vector& x) const {
    if (n == kGround) return 0.0;
    const int idx = index_[n];
    if (idx >= 0) return x[static_cast<std::size_t>(idx)];
    return fixedValue_[n];
}

double MnaMap::voltagePrev(NodeId n, const la::Vector& xPrev) const {
    if (n == kGround) return 0.0;
    const int idx = index_[n];
    if (idx >= 0) return xPrev[static_cast<std::size_t>(idx)];
    return fixedPrev_[n];
}

double MnaMap::knownVoltage(NodeId n) const {
    if (n == kGround) return 0.0;
    SNA_REQUIRE(fixed_[n], "knownVoltage on a free node");
    return fixedValue_[n];
}

void MnaMap::updateFixed(double time, double srcScale) {
    for (NodeId id = 0; id < static_cast<NodeId>(fixed_.size()); ++id) {
        if (!fixed_[id]) continue;
        fixedValue_[id] =
            fixedSign_[id] * fixedSource_[id]->spec().value(time) * srcScale;
    }
}

void MnaMap::commitFixed() { fixedPrev_ = fixedValue_; }

std::size_t MnaMap::stateBaseOf(const Device& d) const {
    const auto it = stateBase_.find(&d);
    SNA_REQUIRE(it != stateBase_.end(), "device has no state slots: " + d.name());
    return it->second;
}

int MnaMap::branchBaseOf(const Device& d) const {
    const auto it = branchBase_.find(&d);
    SNA_REQUIRE(it != branchBase_.end(), "device has no branch rows: " + d.name());
    return it->second;
}

void MnaMap::assemble(la::SparseMatrix& j, la::Vector& rhs,
                      const EvalContext& ctx) const {
    j.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Stamper st(*this, j, rhs);
    for (const auto& dev : circuit_->devices()) dev->stamp(st, ctx);
    // gmin keeps the Jacobian regular when devices are cut off.
    for (std::size_t i = 0; i < nodeUnknowns_; ++i) {
        j.add(i, i, gmin_);
    }
}

// ------------------------------------------------------------------ Newton

NewtonStats solveNewton(MnaMap& map, la::Vector& x, double time, double dt,
                        Integration method, bool transient, double srcScale,
                        const la::Vector* xPrev,
                        const std::vector<double>* statePrev,
                        const NewtonOptions& opt) {
    const std::size_t n = map.unknowns();
    SNA_REQUIRE(x.size() == n, "initial guess has wrong dimension");
    map.updateFixed(time, srcScale);
    la::SparseMatrix j(n);
    la::Vector rhs(n, 0.0);
    // Branch rows have structurally zero diagonals, which the pivot-free
    // sparse path cannot handle; and below a few hundred unknowns the dense
    // LU's cache behavior beats the list-based sparse factorization.
    const bool useDense = map.hasBranches() || n < 280;

    NewtonStats stats;
    for (int iter = 0; iter < opt.maxIterations; ++iter) {
        ++stats.iterations;
        EvalContext ctx(map, x, xPrev, time, dt, method, transient, srcScale,
                        statePrev, nullptr);
        map.assemble(j, rhs, ctx);
        la::Vector xNew;
        if (useDense) {
            xNew = la::solveDense(j.toDense(), rhs);
        } else {
            xNew = la::solveSparse(j, rhs);
        }
        double worst = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            worst = std::max(worst, std::abs(xNew[i] - x[i]));
        }
        if (!std::isfinite(worst)) {
            throw ConvergenceError("Newton produced a non-finite update");
        }
        if (worst <= opt.vtol) {
            x = std::move(xNew);
            stats.converged = true;
            return stats;
        }
        // Damped update: cap the largest component change.
        const double scale = (worst > opt.maxStep) ? opt.maxStep / worst : 1.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += scale * (xNew[i] - x[i]);
        }
    }
    return stats;
}

}  // namespace sna::spice

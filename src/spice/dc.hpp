// DC operating-point analysis.
//
// Robust Newton with the classic fallback ladder: plain Newton from the
// given (or zero) initial guess, then gmin stepping, then source stepping.
// The paper's pre-characterization step (load curves I_DC = f(V_in, V_out),
// Eq. (1)) is a dense sweep of these solves, so warm starting across sweep
// points is part of the interface.
#pragma once

#include <string>

#include "spice/mna.hpp"

namespace sna::spice {

struct DcOptions {
    NewtonOptions newton;
    bool gminStepping = true;
    bool sourceStepping = true;
};

/// An operating point: node voltages plus KCL-derived source currents.
class DcSolution {
public:
    DcSolution(const Circuit& circuit, MnaMap map, la::Vector x);

    double voltage(NodeId node) const;
    double voltage(const std::string& node) const;

    /// Current delivered by a ground-referenced voltage source INTO its
    /// pinned terminal, computed from KCL over the attached devices. This is
    /// exactly the quantity the load-curve characterization measures.
    double sourceCurrent(const std::string& vsourceName) const;

    const la::Vector& raw() const { return x_; }

private:
    const Circuit* circuit_;
    MnaMap map_;
    la::Vector x_;
};

/// Solve the operating point; `warmStart` (if given) must have the
/// dimension of the circuit's MNA unknown vector.
DcSolution solveDc(const Circuit& circuit, const DcOptions& options = {},
                   const la::Vector* warmStart = nullptr);

/// The fallback ladder on an existing map/state; used by solveDc and by the
/// transient initial condition. Throws ConvergenceError if everything fails.
void robustDcSolve(MnaMap& map, la::Vector& x, const DcOptions& options);

}  // namespace sna::spice

// Device zoo of the SPICE engine.
//
// Every element implements stamp() against the Stamper/EvalContext pair; the
// same code path serves DC (transient()==false: capacitors open) and
// transient (companion models). currentInto() reports the DC/instantaneous
// current a device injects into one of its terminals, which powers both
// KCL-based source-current measurement (load-curve characterization) and the
// KCL property tests.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "la/interp.hpp"
#include "spice/mosfet.hpp"
#include "spice/stamp.hpp"
#include "waveform/waveform.hpp"

namespace sna::spice {

/// Time-dependent value of an independent source: a DC level or a PWL wave.
class SourceSpec {
public:
    SourceSpec() = default;

    static SourceSpec dc(double value);
    static SourceSpec pwl(wave::Waveform w);

    double value(double time) const;
    bool isDc() const { return wave_.empty(); }

    /// Times where the PWL slope changes (transient breakpoints).
    std::vector<double> breakpoints() const;

private:
    double dc_ = 0.0;
    wave::Waveform wave_;
};

class Device {
public:
    Device(std::string name, std::vector<NodeId> nodes)
        : name_(std::move(name)), nodes_(std::move(nodes)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    const std::string& name() const { return name_; }
    const std::vector<NodeId>& nodes() const { return nodes_; }

    /// Number of per-device transient state slots (e.g. capacitor current).
    virtual std::size_t stateCount() const { return 0; }

    /// Number of branch-current unknowns this device adds to the MNA system.
    virtual std::size_t branchCount() const { return 0; }

    virtual void stamp(Stamper& s, const EvalContext& ctx) const = 0;

    /// Called after a transient step is accepted; writes stateNext slots.
    virtual void updateState(const EvalContext& /*ctx*/) const {}

    /// Instantaneous current flowing INTO terminal `n` from this device, at
    /// the ctx voltages. Sources that fix node voltages return 0 (their
    /// current is determined by the rest of the circuit).
    virtual double currentInto(NodeId n, const EvalContext& ctx) const = 0;

private:
    std::string name_;
    std::vector<NodeId> nodes_;
};

class Resistor : public Device {
public:
    Resistor(std::string name, NodeId a, NodeId b, double ohms);
    double resistance() const { return ohms_; }
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    double ohms_;
};

class Capacitor : public Device {
public:
    Capacitor(std::string name, NodeId a, NodeId b, double farads);
    double capacitance() const { return farads_; }
    std::size_t stateCount() const override { return 1; }  // branch current
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    void updateState(const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    /// Companion conductance and equivalent current for the active method.
    std::pair<double, double> companion(const EvalContext& ctx) const;
    double farads_;
};

/// Independent voltage source. Ground-referenced instances are eliminated
/// as fixed nodes by the assembler (the common, fast case); floating
/// instances get a branch-current unknown.
class VSource : public Device {
public:
    VSource(std::string name, NodeId pos, NodeId neg, SourceSpec spec);
    NodeId pos() const { return nodes()[0]; }
    NodeId neg() const { return nodes()[1]; }
    const SourceSpec& spec() const { return spec_; }
    void setSpec(SourceSpec spec) { spec_ = std::move(spec); }
    bool grounded() const { return pos() == kGround || neg() == kGround; }
    std::size_t branchCount() const override { return grounded() ? 0 : 1; }
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    SourceSpec spec_;
};

/// Independent current source; positive current flows pos -> neg through
/// the source (i.e. the source extracts from pos and injects into neg).
class ISource : public Device {
public:
    ISource(std::string name, NodeId pos, NodeId neg, SourceSpec spec);
    const SourceSpec& spec() const { return spec_; }
    void setSpec(SourceSpec spec) { spec_ = std::move(spec); }
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    SourceSpec spec_;
};

/// Linear VCCS: i(pos->neg) = gm * (v(cpos) - v(cneg)).
class Vccs : public Device {
public:
    Vccs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
         double gm);
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    double gm_;
};

/// VCVS: v(pos) - v(neg) = gain * (v(cpos) - v(cneg)); one branch unknown.
class Vcvs : public Device {
public:
    Vcvs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
         double gain);
    std::size_t branchCount() const override { return 1; }
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    double gain_;
};

/// Table-driven VCCS — the paper's victim-driver macromodel element.
///
/// Sinks i = table(v(in), v(out)) from `out` to ground, where `table` is the
/// characterized load-curve I_DC = f(V_in, V_out) of the driver cell (Eq. (1)
/// of the paper). Newton linearization uses the exact bilinear-patch
/// partials.
class TableVccs : public Device {
public:
    TableVccs(std::string name, NodeId out, NodeId in, la::Grid2d table);
    const la::Grid2d& table() const { return table_; }
    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

private:
    la::Grid2d table_;  // axes: (v_in, v_out) -> current sunk at out
};

/// Level-1 MOSFET (DC current element; instance capacitances are added as
/// separate Capacitor devices by Circuit::addMosfet).
class Mosfet : public Device {
public:
    Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
           MosModel model, double w, double l);
    NodeId drain() const { return nodes()[0]; }
    NodeId gate() const { return nodes()[1]; }
    NodeId source() const { return nodes()[2]; }
    NodeId bulk() const { return nodes()[3]; }
    const MosModel& model() const { return model_; }
    double width() const { return w_; }
    double length() const { return l_; }

    void stamp(Stamper& s, const EvalContext& ctx) const override;
    double currentInto(NodeId n, const EvalContext& ctx) const override;

    /// Drain current and partials w.r.t. the physical terminal voltages;
    /// exposed for unit tests of region/reflection handling.
    struct Linearization {
        double id;  ///< current into physical drain
        double dVd, dVg, dVs, dVb;
    };
    Linearization linearize(double vd, double vg, double vs, double vb) const;

private:
    MosModel model_;
    double w_;
    double l_;
    double beta_;
};

}  // namespace sna::spice

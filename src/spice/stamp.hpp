// Stamping interfaces between devices and the MNA assembler.
//
// Devices never see matrices directly: they receive an EvalContext (voltage
// lookups at the current Newton iterate and at the previous accepted time
// point, plus integration data) and a Stamper (linearized-KCL primitives).
// The assembler owns fixed-node elimination: stamps that touch a ground or
// source-fixed node are folded into the right-hand side transparently.
#pragma once

#include <cstddef>
#include <vector>

#include "la/dense.hpp"
#include "la/sparse.hpp"

namespace sna::spice {

using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class Integration { BackwardEuler, Trapezoidal };

/// Per-evaluation context handed to Device::stamp and Device::updateState.
class EvalContext {
public:
    EvalContext(const class MnaMap& map, const la::Vector& x,
                const la::Vector* xPrev, double time, double dt,
                Integration method, bool transient, double srcScale,
                const std::vector<double>* statePrev,
                std::vector<double>* stateNext);

    /// Node voltage at the current Newton iterate.
    double v(NodeId n) const;
    /// Node voltage at the previous accepted time point.
    double vPrev(NodeId n) const;
    /// Raw solution entry (branch devices read their own unknowns).
    double unknown(int index) const;

    double time() const { return time_; }
    double dt() const { return dt_; }
    Integration method() const { return method_; }
    bool transient() const { return transient_; }
    /// Independent-source scale in [0,1] (source-stepping homotopy).
    double srcScale() const { return srcScale_; }

    /// Per-device transient state (slot offsets resolved through the map).
    double state(const class Device& d, std::size_t slot) const;
    void setState(const class Device& d, std::size_t slot, double v) const;

    /// Absolute branch-unknown row of a branch device.
    int branchRow(const class Device& d, std::size_t branch = 0) const;

private:
    const MnaMap& map_;
    const la::Vector& x_;
    const la::Vector* xPrev_;
    double time_;
    double dt_;
    Integration method_;
    bool transient_;
    double srcScale_;
    const std::vector<double>* statePrev_;
    std::vector<double>* stateNext_;
};

/// Linearized-KCL stamp primitives over J x = rhs.
class Stamper {
public:
    Stamper(const class MnaMap& map, la::SparseMatrix& j, la::Vector& rhs);

    /// Two-terminal conductance g between a and b.
    void conductance(NodeId a, NodeId b, double g);

    /// Constant current `i` flowing INTO node n.
    void current(NodeId n, double i);

    /// Linearized dependence: the current LEAVING `node` contains the term
    /// didv * v(ctrl). Fixed/ground controls fold into the RHS.
    void dependence(NodeId node, NodeId ctrl, double didv);

    /// Norton stamp of a nonlinear current i(v...) flowing from `from` to
    /// `to` through the device: i0 is the current at the linearization
    /// point, `partials` the (ctrl node, d i/d v_ctrl) pairs, and `vAt`
    /// supplies the linearization-point voltages (EvalContext::v).
    void norton(NodeId from, NodeId to, double i0,
                const std::vector<std::pair<NodeId, double>>& partials,
                const EvalContext& ctx);

    /// Branch-equation access for floating voltage sources / VCVS.
    void branchVoltage(int branch, NodeId pos, NodeId neg, double value);
    void branchControl(int branch, NodeId ctrl, double coeff);
    void branchCurrentInto(int branch, NodeId pos, NodeId neg);

    /// Generic branch-row primitives for multi-branch devices (reduced-order
    /// interconnect macromodels): matrix entry between two branch unknowns,
    /// RHS contribution to a branch row, and a current leaving node `n`
    /// proportional to a branch unknown.
    void branchPair(int row, int branchCol, double value);
    void branchRhs(int row, double value);
    void nodeBranch(NodeId n, int branchCol, double coeff);

private:
    const MnaMap& map_;
    la::SparseMatrix& j_;
    la::Vector& rhs_;
};

}  // namespace sna::spice

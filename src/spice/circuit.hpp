// Circuit: the netlist container shared by every engine in OpenSNA.
//
// Nodes are interned strings ("0" and "gnd" are ground); devices are owned
// polymorphic elements. Cells, interconnect builders and the parser all
// target this API; DC and transient analyses consume it read-only (source
// values may be retargeted between runs via the returned device handles,
// which is how characterization sweeps work).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/device.hpp"

namespace sna::spice {

class Circuit {
public:
    Circuit();

    /// Get-or-create a node by name. "0" and "gnd" map to ground.
    NodeId node(const std::string& name);
    std::optional<NodeId> findNode(const std::string& name) const;
    const std::string& nodeName(NodeId id) const;
    /// Total node count including ground.
    std::size_t nodeCount() const { return names_.size(); }

    Resistor& addResistor(const std::string& name, NodeId a, NodeId b,
                          double ohms);
    Capacitor& addCapacitor(const std::string& name, NodeId a, NodeId b,
                            double farads);
    VSource& addVSource(const std::string& name, NodeId pos, NodeId neg,
                        SourceSpec spec);
    ISource& addISource(const std::string& name, NodeId pos, NodeId neg,
                        SourceSpec spec);
    Vccs& addVccs(const std::string& name, NodeId pos, NodeId neg, NodeId cpos,
                  NodeId cneg, double gm);
    Vcvs& addVcvs(const std::string& name, NodeId pos, NodeId neg, NodeId cpos,
                  NodeId cneg, double gain);
    TableVccs& addTableVccs(const std::string& name, NodeId out, NodeId in,
                            la::Grid2d table);

    /// Adds the transistor plus its constant instance capacitances
    /// (Cgs/Cgd/Cgb/Cdb/Csb) unless withParasitics is false.
    Mosfet& addMosfet(const std::string& name, NodeId d, NodeId g, NodeId s,
                      NodeId b, const MosModel& model, double w, double l,
                      bool withParasitics = true);

    /// Generic adder for externally defined Device subclasses (e.g. the
    /// MOR reduced multiport); registers the name and node fan-out exactly
    /// like the built-in adders.
    template <typename T, typename... Args>
    T& addDevice(Args&&... args) {
        return emplaceDevice<T>(std::forward<Args>(args)...);
    }

    const std::vector<std::unique_ptr<Device>>& devices() const {
        return devices_;
    }
    Device* findDevice(const std::string& name) const;

    /// Devices touching a node (indices into devices()).
    const std::vector<std::size_t>& devicesAt(NodeId n) const;

private:
    template <typename T, typename... Args>
    T& emplaceDevice(Args&&... args) {
        auto dev = std::make_unique<T>(std::forward<Args>(args)...);
        T& ref = *dev;
        registerDevice(std::move(dev));
        return ref;
    }

    /// Validates the name/node references and indexes the device.
    void registerDevice(std::unique_ptr<Device> dev);

    std::vector<std::string> names_;
    std::unordered_map<std::string, NodeId> byName_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, std::size_t> deviceByName_;
    mutable std::vector<std::vector<std::size_t>> nodeDevices_;
};

}  // namespace sna::spice

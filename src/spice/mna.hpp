// MNA assembly with fixed-node elimination.
//
// MnaMap classifies every circuit node as ground, source-fixed (driven by a
// ground-referenced ideal voltage source — the overwhelmingly common case in
// noise clusters: supplies, inputs, Thevenin sources), or unknown. Fixed
// nodes are eliminated from the system: their time-dependent values are
// refreshed per evaluation and stamps touching them fold into the RHS. The
// remaining unknowns get a gmin to ground so the Jacobian stays regular in
// cutoff. Floating voltage sources / VCVS add branch-current unknowns, which
// forces the dense solver (their rows have zero diagonals).
#pragma once

#include <unordered_map>
#include <vector>

#include "la/sparse.hpp"
#include "spice/circuit.hpp"
#include "spice/stamp.hpp"

namespace sna::spice {

class MnaMap {
public:
    explicit MnaMap(const Circuit& circuit);

    const Circuit& circuit() const { return *circuit_; }

    /// Unknown count (node unknowns + branch currents).
    std::size_t unknowns() const { return unknowns_; }
    std::size_t nodeUnknowns() const { return nodeUnknowns_; }
    bool hasBranches() const { return unknowns_ > nodeUnknowns_; }

    /// Index of a node in the solution vector, or -1 (ground/fixed).
    int indexOf(NodeId n) const { return index_[n]; }
    bool isFixed(NodeId n) const { return fixed_[n]; }

    /// Voltage of node n given solution x and current fixed values.
    double voltage(NodeId n, const la::Vector& x) const;
    /// Voltage of node n at the previous accepted time point.
    double voltagePrev(NodeId n, const la::Vector& xPrev) const;
    /// Known voltage of a ground/fixed node at the current evaluation.
    double knownVoltage(NodeId n) const;

    /// Refresh fixed-node values for time t and source scale; called by the
    /// analyses before every evaluation at t.
    void updateFixed(double time, double srcScale);
    /// Snapshot current fixed values as "previous" (on step acceptance).
    void commitFixed();

    /// Total per-device transient state slots and per-device offsets.
    std::size_t stateSlots() const { return stateSlots_; }
    std::size_t stateBaseOf(const Device& d) const;
    int branchBaseOf(const Device& d) const;

    double gmin() const { return gmin_; }
    void setGmin(double g) { gmin_ = g; }

    /// Stamp every device at the given context; adds gmin diagonals.
    void assemble(la::SparseMatrix& j, la::Vector& rhs,
                  const EvalContext& ctx) const;

private:
    const Circuit* circuit_;
    std::vector<int> index_;        // NodeId -> unknown index or -1
    std::vector<char> fixed_;       // NodeId -> source-fixed?
    std::vector<double> fixedValue_;
    std::vector<double> fixedPrev_;
    std::vector<const VSource*> fixedSource_;  // NodeId -> driving source
    std::vector<double> fixedSign_;            // +1 pos grounded-neg, -1 swapped
    std::unordered_map<const Device*, std::size_t> stateBase_;
    std::unordered_map<const Device*, int> branchBase_;
    std::size_t nodeUnknowns_ = 0;
    std::size_t unknowns_ = 0;
    std::size_t stateSlots_ = 0;
    double gmin_ = 1e-12;
};

/// Newton options shared by DC and transient.
struct NewtonOptions {
    int maxIterations = 200;
    double vtol = 1e-6;      ///< convergence: max voltage update, V
    double maxStep = 0.5;    ///< damping: max update component per iteration, V
};

struct NewtonStats {
    bool converged = false;
    int iterations = 0;
};

/// Damped Newton on the MNA system at one (time, dt, method) configuration;
/// refreshes the map's fixed-node values for `time`/`srcScale` first. x is
/// the initial guess in and the solution out.
NewtonStats solveNewton(MnaMap& map, la::Vector& x, double time, double dt,
                        Integration method, bool transient, double srcScale,
                        const la::Vector* xPrev,
                        const std::vector<double>* statePrev,
                        const NewtonOptions& opt);

}  // namespace sna::spice

#include "spice/circuit.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::spice {

Circuit::Circuit() {
    names_.push_back("0");
    byName_["0"] = kGround;
    byName_["gnd"] = kGround;
    nodeDevices_.emplace_back();
}

NodeId Circuit::node(const std::string& name) {
    const std::string key = str::toLower(name);
    const auto it = byName_.find(key);
    if (it != byName_.end()) return it->second;
    const NodeId id = static_cast<NodeId>(names_.size());
    names_.push_back(name);
    byName_[key] = id;
    nodeDevices_.emplace_back();
    return id;
}

std::optional<NodeId> Circuit::findNode(const std::string& name) const {
    const auto it = byName_.find(str::toLower(name));
    if (it == byName_.end()) return std::nullopt;
    return it->second;
}

const std::string& Circuit::nodeName(NodeId id) const {
    SNA_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
                "node id out of range");
    return names_[id];
}

void Circuit::registerDevice(std::unique_ptr<Device> dev) {
    SNA_REQUIRE(deviceByName_.find(dev->name()) == deviceByName_.end(),
                "duplicate device name '" + dev->name() + "'");
    const std::size_t idx = devices_.size();
    deviceByName_[dev->name()] = idx;
    for (NodeId n : dev->nodes()) {
        SNA_REQUIRE(n >= 0 && static_cast<std::size_t>(n) < names_.size(),
                    "device references unknown node");
        nodeDevices_[n].push_back(idx);
    }
    devices_.push_back(std::move(dev));
}

Resistor& Circuit::addResistor(const std::string& name, NodeId a, NodeId b,
                               double ohms) {
    return emplaceDevice<Resistor>(name, a, b, ohms);
}

Capacitor& Circuit::addCapacitor(const std::string& name, NodeId a, NodeId b,
                                 double farads) {
    return emplaceDevice<Capacitor>(name, a, b, farads);
}

VSource& Circuit::addVSource(const std::string& name, NodeId pos, NodeId neg,
                             SourceSpec spec) {
    return emplaceDevice<VSource>(name, pos, neg, std::move(spec));
}

ISource& Circuit::addISource(const std::string& name, NodeId pos, NodeId neg,
                             SourceSpec spec) {
    return emplaceDevice<ISource>(name, pos, neg, std::move(spec));
}

Vccs& Circuit::addVccs(const std::string& name, NodeId pos, NodeId neg,
                       NodeId cpos, NodeId cneg, double gm) {
    return emplaceDevice<Vccs>(name, pos, neg, cpos, cneg, gm);
}

Vcvs& Circuit::addVcvs(const std::string& name, NodeId pos, NodeId neg,
                       NodeId cpos, NodeId cneg, double gain) {
    return emplaceDevice<Vcvs>(name, pos, neg, cpos, cneg, gain);
}

TableVccs& Circuit::addTableVccs(const std::string& name, NodeId out,
                                 NodeId in, la::Grid2d table) {
    return emplaceDevice<TableVccs>(name, out, in, std::move(table));
}

Mosfet& Circuit::addMosfet(const std::string& name, NodeId d, NodeId g,
                           NodeId s, NodeId b, const MosModel& model, double w,
                           double l, bool withParasitics) {
    Mosfet& fet = emplaceDevice<Mosfet>(name, d, g, s, b, model, w, l);
    if (withParasitics) {
        const MosCaps caps = instanceCaps(model, w, l);
        auto cap = [&](const char* suffix, NodeId x, NodeId y, double value) {
            if (value > 0.0 && x != y) {
                addCapacitor(name + suffix, x, y, value);
            }
        };
        cap(":cgs", g, s, caps.cgs);
        cap(":cgd", g, d, caps.cgd);
        cap(":cgb", g, b, caps.cgb);
        cap(":cdb", d, b, caps.cdb);
        cap(":csb", s, b, caps.csb);
    }
    return fet;
}

Device* Circuit::findDevice(const std::string& name) const {
    const auto it = deviceByName_.find(name);
    if (it == deviceByName_.end()) return nullptr;
    return devices_[it->second].get();
}

const std::vector<std::size_t>& Circuit::devicesAt(NodeId n) const {
    SNA_REQUIRE(n >= 0 && static_cast<std::size_t>(n) < nodeDevices_.size(),
                "node id out of range");
    return nodeDevices_[n];
}

}  // namespace sna::spice

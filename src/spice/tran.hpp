// Adaptive transient analysis.
//
// Trapezoidal integration with backward-Euler restarts at waveform
// breakpoints (source slope discontinuities), local-truncation-error step
// control via a linear predictor, and the robust DC ladder for the initial
// condition. This engine plays the role of ELDO™ in the paper's experiments:
// the golden transistor-level reference every macromodel is judged against.
#pragma once

#include <string>
#include <unordered_map>

#include "spice/dc.hpp"
#include "waveform/waveform.hpp"

namespace sna::spice {

struct TranOptions {
    double tstop = 0.0;      ///< required, seconds
    double dtInit = 0.0;     ///< 0 -> tstop / 5000 (also the post-breakpoint dt)
    double dtMin = 1e-18;
    double dtMax = 0.0;      ///< 0 -> tstop / 50
    double reltol = 2e-3;    ///< LTE relative tolerance
    double abstol = 2e-5;    ///< LTE absolute floor, volts
    std::size_t maxSteps = 2'000'000;
    NewtonOptions newton;
    DcOptions dc;
};

struct TranStats {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    long newtonIterations = 0;
};

class TranResult {
public:
    bool has(const std::string& node) const;
    const wave::Waveform& waveform(const std::string& node) const;
    const TranStats& stats() const { return stats_; }

private:
    friend TranResult simulateTransient(const Circuit&, const TranOptions&);
    std::unordered_map<std::string, wave::Waveform> waves_;
    TranStats stats_;
};

/// Run a transient from a DC initial condition to options.tstop, recording
/// every node voltage as a piecewise-linear waveform.
TranResult simulateTransient(const Circuit& circuit,
                             const TranOptions& options);

}  // namespace sna::spice

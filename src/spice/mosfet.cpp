#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::spice {

MosEval evalLevel1(const MosModel& m, double beta, double vgs, double vds,
                   double vbs) {
    SNA_REQUIRE(vds >= 0.0, "evalLevel1 requires vds >= 0 (caller swaps)");
    MosEval e;

    // Body effect with a clamp that keeps sqrt real and the derivative
    // bounded when the junction approaches forward bias.
    const double phiEff = std::max(m.phi, 1e-3);
    const double arg = std::max(phiEff - vbs, 1e-3);
    const double sarg = std::sqrt(arg);
    const double vt = m.vt0 + m.gamma * (sarg - std::sqrt(phiEff));
    const double dvtDvbs = -m.gamma / (2.0 * sarg);

    const double vgst = vgs - vt;
    if (vgst <= 0.0) {
        return e;  // cutoff: all zero (gmin at the MNA level keeps J regular)
    }

    const double clm = 1.0 + m.lambda * vds;
    if (vds < vgst) {
        // Triode.
        const double f = beta * (vgst - 0.5 * vds) * vds;
        e.ids = f * clm;
        e.gm = beta * vds * clm;
        e.gds = beta * (vgst - vds) * clm + f * m.lambda;
        e.gmbs = e.gm * (-dvtDvbs);
    } else {
        // Saturation.
        const double f = 0.5 * beta * vgst * vgst;
        e.ids = f * clm;
        e.gm = beta * vgst * clm;
        e.gds = f * m.lambda;
        e.gmbs = e.gm * (-dvtDvbs);
    }
    return e;
}

MosCaps instanceCaps(const MosModel& m, double w, double l) {
    SNA_REQUIRE(w > 0.0 && l > 0.0, "MOSFET geometry must be positive");
    MosCaps c;
    const double channel = m.cox * w * l;
    // Constant worst-case split: half the channel charge to each of
    // source/drain plus the overlaps; a small residue to bulk.
    c.cgs = m.cgso * w + 0.5 * channel;
    c.cgd = m.cgdo * w + 0.5 * channel;
    c.cgb = 0.1 * channel;
    const double areaJ = w * m.ldiff;
    const double perimJ = 2.0 * (w + m.ldiff);
    c.cdb = m.cj * areaJ + m.cjsw * perimJ;
    c.csb = m.cj * areaJ + m.cjsw * perimJ;
    return c;
}

}  // namespace sna::spice

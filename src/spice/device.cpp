#include "spice/device.hpp"

#include <cmath>

#include "spice/mna.hpp"
#include "util/error.hpp"

namespace sna::spice {

// ---------------------------------------------------------------- sources

SourceSpec SourceSpec::dc(double value) {
    SourceSpec s;
    s.dc_ = value;
    return s;
}

SourceSpec SourceSpec::pwl(wave::Waveform w) {
    SNA_REQUIRE(!w.empty(), "PWL source needs a non-empty waveform");
    SourceSpec s;
    s.wave_ = std::move(w);
    return s;
}

double SourceSpec::value(double time) const {
    return wave_.empty() ? dc_ : wave_.value(time);
}

std::vector<double> SourceSpec::breakpoints() const {
    std::vector<double> out;
    for (const auto& s : wave_.samples()) out.push_back(s.t);
    return out;
}

// --------------------------------------------------------------- resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name), {a, b}), ohms_(ohms) {
    SNA_REQUIRE(ohms > 0.0, "resistance must be positive: " + this->name());
}

void Resistor::stamp(Stamper& s, const EvalContext&) const {
    s.conductance(nodes()[0], nodes()[1], 1.0 / ohms_);
}

double Resistor::currentInto(NodeId n, const EvalContext& ctx) const {
    const double va = ctx.v(nodes()[0]);
    const double vb = ctx.v(nodes()[1]);
    const double iAToB = (va - vb) / ohms_;
    if (n == nodes()[0]) return -iAToB;
    if (n == nodes()[1]) return +iAToB;
    return 0.0;
}

// -------------------------------------------------------------- capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Device(std::move(name), {a, b}), farads_(farads) {
    SNA_REQUIRE(farads > 0.0, "capacitance must be positive: " + this->name());
}

std::pair<double, double> Capacitor::companion(const EvalContext& ctx) const {
    // Returns {geq, ieq}: i(a->b) = geq * vab_now - ieq.
    const double vabPrev = ctx.vPrev(nodes()[0]) - ctx.vPrev(nodes()[1]);
    if (ctx.method() == Integration::BackwardEuler) {
        const double geq = farads_ / ctx.dt();
        return {geq, geq * vabPrev};
    }
    const double geq = 2.0 * farads_ / ctx.dt();
    const double iPrev = ctx.state(*this, 0);
    return {geq, geq * vabPrev + iPrev};
}

void Capacitor::stamp(Stamper& s, const EvalContext& ctx) const {
    if (!ctx.transient()) return;  // open in DC
    const auto [geq, ieq] = companion(ctx);
    s.conductance(nodes()[0], nodes()[1], geq);
    s.current(nodes()[0], ieq);
    s.current(nodes()[1], -ieq);
}

void Capacitor::updateState(const EvalContext& ctx) const {
    if (!ctx.transient()) {
        ctx.setState(*this, 0, 0.0);  // DC steady state: no current
        return;
    }
    const auto [geq, ieq] = companion(ctx);
    const double vab = ctx.v(nodes()[0]) - ctx.v(nodes()[1]);
    ctx.setState(*this, 0, geq * vab - ieq);
}

double Capacitor::currentInto(NodeId n, const EvalContext& ctx) const {
    if (!ctx.transient()) return 0.0;
    const auto [geq, ieq] = companion(ctx);
    const double vab = ctx.v(nodes()[0]) - ctx.v(nodes()[1]);
    const double iAToB = geq * vab - ieq;
    if (n == nodes()[0]) return -iAToB;
    if (n == nodes()[1]) return +iAToB;
    return 0.0;
}

// ---------------------------------------------------------------- vsource

VSource::VSource(std::string name, NodeId pos, NodeId neg, SourceSpec spec)
    : Device(std::move(name), {pos, neg}), spec_(std::move(spec)) {
    SNA_REQUIRE(pos != neg, "voltage source with shorted terminals: " +
                                this->name());
}

void VSource::stamp(Stamper& s, const EvalContext& ctx) const {
    if (grounded()) return;  // eliminated as a fixed node by the assembler
    const int row = ctx.branchRow(*this);
    s.branchVoltage(row, pos(), neg(), spec_.value(ctx.time()) * ctx.srcScale());
    s.branchCurrentInto(row, pos(), neg());
}

double VSource::currentInto(NodeId, const EvalContext&) const {
    return 0.0;  // determined by the surrounding circuit
}

// ---------------------------------------------------------------- isource

ISource::ISource(std::string name, NodeId pos, NodeId neg, SourceSpec spec)
    : Device(std::move(name), {pos, neg}), spec_(std::move(spec)) {}

void ISource::stamp(Stamper& s, const EvalContext& ctx) const {
    const double i = spec_.value(ctx.time()) * ctx.srcScale();
    s.current(nodes()[0], -i);
    s.current(nodes()[1], +i);
}

double ISource::currentInto(NodeId n, const EvalContext& ctx) const {
    const double i = spec_.value(ctx.time()) * ctx.srcScale();
    if (n == nodes()[0]) return -i;
    if (n == nodes()[1]) return +i;
    return 0.0;
}

// ------------------------------------------------------------------- vccs

Vccs::Vccs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
           double gm)
    : Device(std::move(name), {pos, neg, cpos, cneg}), gm_(gm) {}

void Vccs::stamp(Stamper& s, const EvalContext& ctx) const {
    const NodeId cp = nodes()[2];
    const NodeId cn = nodes()[3];
    const double i0 = gm_ * (ctx.v(cp) - ctx.v(cn));
    s.norton(nodes()[0], nodes()[1], i0, {{cp, gm_}, {cn, -gm_}}, ctx);
}

double Vccs::currentInto(NodeId n, const EvalContext& ctx) const {
    const double i = gm_ * (ctx.v(nodes()[2]) - ctx.v(nodes()[3]));
    if (n == nodes()[0]) return -i;
    if (n == nodes()[1]) return +i;
    return 0.0;
}

// ------------------------------------------------------------------- vcvs

Vcvs::Vcvs(std::string name, NodeId pos, NodeId neg, NodeId cpos, NodeId cneg,
           double gain)
    : Device(std::move(name), {pos, neg, cpos, cneg}), gain_(gain) {}

void Vcvs::stamp(Stamper& s, const EvalContext& ctx) const {
    const int row = ctx.branchRow(*this);
    s.branchVoltage(row, nodes()[0], nodes()[1], 0.0);
    s.branchControl(row, nodes()[2], -gain_);
    s.branchControl(row, nodes()[3], +gain_);
    s.branchCurrentInto(row, nodes()[0], nodes()[1]);
}

double Vcvs::currentInto(NodeId, const EvalContext&) const {
    return 0.0;  // determined by the surrounding circuit
}

// -------------------------------------------------------------- tablevccs

TableVccs::TableVccs(std::string name, NodeId out, NodeId in, la::Grid2d table)
    : Device(std::move(name), {out, in}), table_(std::move(table)) {
    SNA_REQUIRE(!table_.empty(), "table VCCS needs a characterized table: " +
                                     this->name());
}

void TableVccs::stamp(Stamper& s, const EvalContext& ctx) const {
    const NodeId out = nodes()[0];
    const NodeId in = nodes()[1];
    const la::Grid2d::Value v = table_.eval(ctx.v(in), ctx.v(out));
    s.norton(out, kGround, v.z, {{in, v.dzdx}, {out, v.dzdy}}, ctx);
}

double TableVccs::currentInto(NodeId n, const EvalContext& ctx) const {
    const double i = table_(ctx.v(nodes()[1]), ctx.v(nodes()[0]));
    if (n == nodes()[0]) return -i;  // sunk from the output node
    return 0.0;
}

// ----------------------------------------------------------------- mosfet

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               MosModel model, double w, double l)
    : Device(std::move(name), {d, g, s, b}),
      model_(model),
      w_(w),
      l_(l),
      beta_(model.kp * w / l) {
    SNA_REQUIRE(w > 0.0 && l > 0.0, "MOSFET geometry must be positive: " +
                                        this->name());
}

Mosfet::Linearization Mosfet::linearize(double vd, double vg, double vs,
                                        double vb) const {
    const double sign = (model_.type == MosType::Nmos) ? 1.0 : -1.0;
    const double vdp = sign * vd;
    const double vgp = sign * vg;
    const double vsp = sign * vs;
    const double vbp = sign * vb;

    Linearization lin{};
    if (vdp >= vsp) {
        // Normal mode (reflected space): effective drain = physical drain.
        const MosEval e =
            evalLevel1(model_, beta_, vgp - vsp, vdp - vsp, vbp - vsp);
        lin.id = sign * e.ids;
        lin.dVg = e.gm;
        lin.dVd = e.gds;
        lin.dVb = e.gmbs;
        lin.dVs = -(e.gm + e.gds + e.gmbs);
    } else {
        // Swapped mode: effective drain = physical source.
        const MosEval e =
            evalLevel1(model_, beta_, vgp - vdp, vsp - vdp, vbp - vdp);
        lin.id = -sign * e.ids;
        lin.dVg = -e.gm;
        lin.dVs = -e.gds;
        lin.dVb = -e.gmbs;
        lin.dVd = e.gm + e.gds + e.gmbs;
    }
    return lin;
}

void Mosfet::stamp(Stamper& s, const EvalContext& ctx) const {
    const NodeId d = drain();
    const NodeId g = gate();
    const NodeId src = source();
    const NodeId b = bulk();
    const Linearization lin =
        linearize(ctx.v(d), ctx.v(g), ctx.v(src), ctx.v(b));
    s.norton(d, src, lin.id,
             {{d, lin.dVd}, {g, lin.dVg}, {src, lin.dVs}, {b, lin.dVb}}, ctx);
}

double Mosfet::currentInto(NodeId n, const EvalContext& ctx) const {
    const Linearization lin =
        linearize(ctx.v(drain()), ctx.v(gate()), ctx.v(source()), ctx.v(bulk()));
    if (n == drain()) return -lin.id;
    if (n == source()) return +lin.id;
    return 0.0;
}

}  // namespace sna::spice

#include "spice/tran.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::spice {

bool TranResult::has(const std::string& node) const {
    return waves_.find(node) != waves_.end();
}

const wave::Waveform& TranResult::waveform(const std::string& node) const {
    const auto it = waves_.find(node);
    SNA_REQUIRE(it != waves_.end(), "no waveform recorded for node '" + node +
                                        "'");
    return it->second;
}

namespace {

// Breakpoints: every PWL corner of every independent source in (0, tstop).
std::vector<double> collectBreakpoints(const Circuit& circuit, double tstop) {
    std::vector<double> bps;
    for (const auto& dev : circuit.devices()) {
        std::vector<double> devBps;
        if (const auto* vs = dynamic_cast<const VSource*>(dev.get())) {
            devBps = vs->spec().breakpoints();
        } else if (const auto* is = dynamic_cast<const ISource*>(dev.get())) {
            devBps = is->spec().breakpoints();
        }
        for (double t : devBps) {
            if (t > 1e-21 && t < tstop) bps.push_back(t);
        }
    }
    bps.push_back(tstop);
    std::sort(bps.begin(), bps.end());
    // Merge breakpoints closer than a femtosecond.
    std::vector<double> merged;
    for (double t : bps) {
        if (merged.empty() || t - merged.back() > 1e-15) merged.push_back(t);
    }
    return merged;
}

}  // namespace

TranResult simulateTransient(const Circuit& circuit,
                             const TranOptions& options) {
    SNA_REQUIRE(options.tstop > 0.0, "transient needs a positive tstop");
    const double tstop = options.tstop;
    const double dtInit =
        (options.dtInit > 0.0) ? options.dtInit : tstop / 5000.0;
    const double dtMax = (options.dtMax > 0.0) ? options.dtMax : tstop / 50.0;
    const double dtMin = options.dtMin;

    MnaMap map(circuit);
    TranResult result;

    // --- initial condition -------------------------------------------------
    map.updateFixed(0.0, 1.0);
    la::Vector x(map.unknowns(), 0.0);
    robustDcSolve(map, x, options.dc);
    map.setGmin(1e-12);
    map.updateFixed(0.0, 1.0);
    map.commitFixed();

    std::vector<double> statePrev(map.stateSlots(), 0.0);
    std::vector<double> stateNext(map.stateSlots(), 0.0);
    {
        EvalContext ctx(map, x, nullptr, 0.0, 0.0, Integration::BackwardEuler,
                        /*transient=*/false, 1.0, &statePrev, &stateNext);
        for (const auto& dev : circuit.devices()) {
            if (dev->stateCount() > 0) dev->updateState(ctx);
        }
        statePrev = stateNext;
    }

    // --- recording ---------------------------------------------------------
    const std::size_t nodeCount = circuit.nodeCount();
    std::vector<std::vector<wave::Sample>> record(nodeCount);
    auto recordAll = [&](double t) {
        for (NodeId id = 1; id < static_cast<NodeId>(nodeCount); ++id) {
            record[id].push_back({t, map.voltage(id, x)});
        }
    };
    recordAll(0.0);

    // --- main loop ----------------------------------------------------------
    const std::vector<double> breakpoints = collectBreakpoints(circuit, tstop);
    std::size_t nextBp = 0;

    double t = 0.0;
    double dt = dtInit;
    double dtPrevAccepted = 0.0;
    la::Vector xOlder;           // solution one accepted point earlier
    bool haveHistory = false;    // xOlder valid (for the predictor)
    bool forceBe = true;         // BE on the first step and after breakpoints

    TranStats stats;
    while (t < tstop - 1e-18) {
        // Cooperative cancellation: one thread-local read per accepted or
        // rejected step when no deadline is armed. Unwinds with
        // CancelledError so a deadline can interrupt a solve mid-transient
        // instead of waiting out the full timestep budget.
        util::pollCancellation();
        if (stats.accepted + stats.rejected > options.maxSteps) {
            throw ConvergenceError("transient exceeded the step budget");
        }
        // Land exactly on the next breakpoint.
        while (nextBp < breakpoints.size() && breakpoints[nextBp] <= t + 1e-18) {
            ++nextBp;
        }
        bool hitsBp = false;
        if (nextBp < breakpoints.size() && t + dt >= breakpoints[nextBp] - 1e-15) {
            dt = breakpoints[nextBp] - t;
            hitsBp = true;
        }
        const Integration method =
            forceBe ? Integration::BackwardEuler : Integration::Trapezoidal;

        // Predictor as the Newton initial guess (and the LTE reference).
        la::Vector xGuess = x;
        la::Vector xPred = x;
        const bool canPredict = haveHistory && dtPrevAccepted > 0.0;
        if (canPredict) {
            const double a = dt / dtPrevAccepted;
            for (std::size_t i = 0; i < x.size(); ++i) {
                xPred[i] = x[i] + a * (x[i] - xOlder[i]);
            }
            xGuess = xPred;
        }

        la::Vector xNew = xGuess;
        bool converged = false;
        try {
            const NewtonStats ns =
                solveNewton(map, xNew, t + dt, dt, method, /*transient=*/true,
                            1.0, &x, &statePrev, options.newton);
            stats.newtonIterations += ns.iterations;
            converged = ns.converged;
        } catch (const ConvergenceError&) {
            converged = false;
        }

        if (!converged) {
            ++stats.rejected;
            dt *= 0.25;
            if (dt < dtMin) {
                throw ConvergenceError("transient Newton failed at t = " +
                                       std::to_string(t));
            }
            continue;
        }

        // LTE control: compare the corrector against the linear predictor.
        if (canPredict && method == Integration::Trapezoidal) {
            double eps = 0.0;
            for (std::size_t i = 0; i < xNew.size(); ++i) {
                const double scale =
                    options.reltol *
                        std::max(std::abs(xNew[i]), std::abs(x[i])) +
                    options.abstol;
                eps = std::max(eps, std::abs(xNew[i] - xPred[i]) / scale);
            }
            if (eps > 1.0 && dt > dtMin * 4.0 && !hitsBp) {
                ++stats.rejected;
                dt *= std::max(0.2, 0.9 * std::pow(eps, -1.0 / 3.0));
                continue;
            }
            // Accepted: grow the step for next time.
            const double grow =
                (eps > 0.0) ? 0.9 * std::pow(eps, -1.0 / 3.0) : 2.0;
            dtPrevAccepted = dt;
            dt = std::clamp(dt * std::clamp(grow, 0.3, 2.0), dtMin, dtMax);
        } else {
            dtPrevAccepted = dt;
            dt = std::clamp(dt * 2.0, dtMin, dtMax);
        }

        // Commit the step.
        {
            EvalContext ctx(map, xNew, &x, t + dtPrevAccepted, dtPrevAccepted,
                            method, /*transient=*/true, 1.0, &statePrev,
                            &stateNext);
            for (const auto& dev : circuit.devices()) {
                if (dev->stateCount() > 0) dev->updateState(ctx);
            }
            statePrev = stateNext;
        }
        map.commitFixed();
        xOlder = x;
        x = xNew;
        haveHistory = true;
        t += dtPrevAccepted;
        ++stats.accepted;
        recordAll(t);

        if (hitsBp) {
            // Slope discontinuity: restart integration gently.
            forceBe = true;
            haveHistory = false;
            dt = std::min(dt, dtInit);
        } else {
            forceBe = false;
        }
    }

    // --- package ------------------------------------------------------------
    result.stats_ = stats;
    for (NodeId id = 1; id < static_cast<NodeId>(nodeCount); ++id) {
        result.waves_.emplace(circuit.nodeName(id),
                              wave::Waveform(std::move(record[id])));
    }
    log::debug() << "transient: " << stats.accepted << " steps, "
                 << stats.rejected << " rejected, " << stats.newtonIterations
                 << " newton iterations";
    return result;
}

}  // namespace sna::spice

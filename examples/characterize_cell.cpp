// Scenario: library characterization for noise analysis.
//
// Runs the paper's pre-characterization step for one cell and prints every
// produced model: the load-curve table I_DC = f(V_in, V_out) (Eq. (1)), the
// holding resistance, the Thevenin fit of the cell as an aggressor driver,
// the noise-propagation table, and the receiver NRC. This is what a library
// team would run once per cell and ship alongside the .lib.
//
// Build & run:  ./build/examples/characterize_cell [CELL_NAME]
#include <cstdio>
#include <string>

#include "celllib/library.hpp"
#include "charlib/characterize.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace sna;
    const std::string cellName = (argc > 1) ? argv[1] : "NAND2_X1";
    const cell::CellLibrary lib(tech::tech130());
    if (!lib.has(cellName)) {
        std::fprintf(stderr, "no cell '%s'; available:", cellName.c_str());
        for (const auto& n : lib.names()) std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }
    const cell::Cell& cellRef = lib.cell(cellName);
    const double vdd = lib.technology().vdd;
    std::printf("characterizing %s in %s (vdd %.2f V)\n\n", cellName.c_str(),
                lib.technology().name.c_str(), vdd);

    // ---- load curve --------------------------------------------------------
    charlib::LoadCurveSpec lc;
    lc.cell = &cellRef;
    lc.input = cellRef.inputNames().front();
    lc.outputLevel = false;
    const auto table = charlib::characterizeLoadCurve(lc);
    std::printf("load curve I_DC(vin, vout), output held low, input '%s' "
                "(mA):\n", lc.input.c_str());
    util::Table lcT({"vin\\vout", "0.0", "0.3", "0.6", "0.9", "1.2"});
    for (const double vin : {0.0, 0.3, 0.6, 0.9, 1.2}) {
        std::vector<std::string> row{util::Table::num(vin, 1)};
        for (const double vout : {0.0, 0.3, 0.6, 0.9, 1.2}) {
            row.push_back(util::Table::num(table(vin, vout) * 1e3, 3));
        }
        lcT.addRow(std::move(row));
    }
    std::printf("%s", lcT.str().c_str());
    std::printf("holding resistance at the quiet point: %.0f ohm\n\n",
                charlib::holdingResistance(table, vdd, 0.0));

    // ---- Thevenin (as an aggressor driver) --------------------------------
    charlib::TheveninSpec ts;
    ts.cell = &cellRef;
    ts.input = cellRef.inputNames().front();
    ts.outputRising = true;
    ts.loadCap = 40e-15;
    const auto thev = charlib::characterizeThevenin(ts);
    std::printf("Thevenin (rising output into 40 fF): ramp %.2f->%.2f V over "
                "%.0f ps behind %.0f ohm, insertion delay %.0f ps\n\n",
                thev.vStart, thev.vEnd, thev.slew * 1e12, thev.rth,
                thev.delay * 1e12);

    // ---- propagation table -------------------------------------------------
    charlib::PropagationSpec ps;
    ps.cell = &cellRef;
    ps.input = lc.input;
    ps.outputLevel = false;
    ps.loadCap = 40e-15;
    ps.heights = {0.3 * vdd, 0.6 * vdd, 0.9 * vdd};
    ps.widths = {120e-12, 240e-12, 480e-12};
    const auto prop = charlib::characterizePropagation(ps);
    std::printf("noise propagation, output glitch peak (V) per input glitch "
                "(height x width):\n");
    util::Table pT({"height\\width", "120ps", "240ps", "480ps"});
    for (const double h : ps.heights) {
        std::vector<std::string> row{util::Table::num(h, 2)};
        for (const double w : ps.widths) {
            row.push_back(util::Table::num(prop.peak(h, w), 3));
        }
        pT.addRow(std::move(row));
    }
    std::printf("%s\n", pT.str().c_str());

    // ---- NRC (as a receiver) -----------------------------------------------
    charlib::NrcSpec nrc;
    nrc.cell = &cellRef;
    nrc.input = lc.input;
    nrc.quietLevel = false;
    nrc.widths = {60e-12, 120e-12, 240e-12, 480e-12, 960e-12};
    const auto curve = charlib::characterizeNrc(nrc);
    std::printf("noise rejection curve (failing glitch height per width):\n");
    util::Table nT({"width (ps)", "failing height (V)"});
    for (std::size_t i = 0; i < curve.xs().size(); ++i) {
        nT.addRow({util::Table::num(curve.xs()[i] * 1e12, 0),
                   util::Table::num(curve.ys()[i], 3)});
    }
    std::printf("%s", nT.str().c_str());
    return 0;
}

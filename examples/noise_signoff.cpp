// Scenario: design-level noise sign-off from a netlist + SPEF parasitics.
//
// A miniature version of the flow the paper's conclusions call for: a
// gate-level design is connected to extracted coupled parasitics (SPEF);
// every net with coupling capacitance is clustered with its strongest
// aggressors, analyzed at the worst-case alignment with the non-linear
// macromodel, and checked against its receiver's noise rejection curve.
//
// Build & run:  ./build/examples/noise_signoff
#include <cstdio>

#include "core/sna.hpp"
#include "interconnect/parallel_bus.hpp"
#include "util/table.hpp"

int main() {
    using namespace sna;
    const cell::CellLibrary lib(tech::tech130());

    // ---- parasitics: three coupled routes exported as SPEF ---------------
    // (In production this file comes from the extractor; here we generate
    // it from geometry and round-trip it through the SPEF parser.)
    ic::StarClusterSpec star;
    star.layer = &tech::tech130().layer("M4");
    star.lengthUm = 550.0;
    star.aggressors = 2;
    star.segments = 12;
    const std::string spefText = ic::toSpef(ic::buildStarCluster(star),
                                            "signoff_demo");
    const auto spef = parser::parseSpef(spefText);
    std::printf("parsed SPEF '%s': %zu nets\n", spef.design().c_str(),
                spef.nets().size());

    // ---- the design -------------------------------------------------------
    core::Design design(lib);
    auto inst = [&](const std::string& name, const std::string& cellName,
                    std::map<std::string, std::string> pins) {
        core::Instance i;
        i.name = name;
        i.cellName = cellName;
        i.pinToNet = std::move(pins);
        design.addInstance(std::move(i));
    };
    inst("u_vic", "NAND2_X1", {{"a", "na"}, {"b", "nb"}, {"y", "victim"}});
    inst("u_vrx", "INV_X2", {{"a", "victim"}, {"y", "vo"}});
    inst("u_a0", "INV_X2", {{"a", "p0"}, {"y", "agg0"}});
    inst("u_a0r", "INV_X1", {{"a", "agg0"}, {"y", "o0"}});
    inst("u_a1", "BUF_X2", {{"a", "p1"}, {"y", "agg1"}});
    inst("u_a1r", "NAND2_X1", {{"a", "agg1"}, {"b", "en"}, {"y", "o1"}});

    // ---- run ---------------------------------------------------------------
    core::DesignNoiseOptions opt;
    const auto reports = core::analyzeDesign(design, spef, opt);

    util::Table table({"Victim net", "Driver", "Aggressors", "Worst peak (V)",
                       "Width (ps)", "NRC limit (V)", "Margin (V)",
                       "Verdict"});
    for (const auto& r : reports) {
        std::string aggs;
        for (const auto& a : r.aggressorNets) {
            if (!aggs.empty()) aggs += ",";
            aggs += a;
        }
        const auto& m = r.cluster.worst.metrics;
        table.addRow({r.net, design.driverOf(r.net)->cellName, aggs,
                      util::Table::num(m.peak, 3),
                      util::Table::num(m.width * 1e12, 0),
                      util::Table::num(r.cluster.nrcLimit, 3),
                      util::Table::num(r.cluster.margin, 3),
                      r.cluster.fails ? "FAIL" : "pass"});
    }
    std::printf("\nStatic noise analysis report (%zu coupled nets "
                "analyzed)\n\n%s\n", reports.size(), table.str().c_str());
    return 0;
}

// Scenario: design-level noise sign-off from a netlist + SPEF parasitics,
// with stage-to-stage noise propagation.
//
// A miniature version of the flow the paper's conclusions call for: a
// gate-level design is connected to extracted coupled parasitics (SPEF);
// every net with coupling capacitance is clustered with its strongest
// aggressors, analyzed at the worst-case alignment with the non-linear
// macromodel, and checked against its receiver's noise rejection curve.
// With DesignNoiseOptions::propagate the analysis walks the levelized
// design graph: each net's surviving glitch is injected into its fanout
// stage, so the report shows the local-only margin (what a flat per-net
// sweep sees) next to the combined margin (local coupling + propagated
// upstream noise) — the stage-2 net below fails only in the combined view.
//
// A second pass supplies per-net switching windows (the FRAME-style
// temporal-correlation input an STA tool would export): stage 2's
// aggressors can only switch long after the victim's sensitivity interval,
// so the window-constrained verdict excludes them and recovers the
// pessimism — the report then shows the unconstrained margin next to the
// windowed one.
//
// Build & run:
//   ./build/noise_signoff [--cache signoff.snacache] [--lint[=strict]]
//                         [--waivers FILE]
//   ./build/noise_signoff --lib FILE --verilog FILE [--sdc FILE]
//                         [--spef FILE] [other flags]
// Without --lib/--verilog the built-in demo design runs. With them, the
// industry front end takes over: the Liberty library is bound to the
// bundled cells (NLDM delay/slew tables seed the characterization cache
// for window propagation), the structural Verilog netlist becomes the
// design, SDC input delays seed the switching windows, and --spef supplies
// the extracted parasitics (omitted: a demo-grade placeholder extractor
// couples consecutive wire declarations so the flow still runs end to
// end). The front-end lint rules (SNA-L6xx) always run in this mode.
// --cache warm-starts the characterization cache from the given file when
// it exists and saves it back after the run: the second invocation serves
// every load curve, Thevenin model, NRC, and propagation table from disk
// and characterizes nothing.
// --lint runs the design checker (lint/lint.hpp) before the analysis and
// prints every diagnostic; --lint=strict refuses to analyze a design with
// unwaived errors. --waivers FILE suppresses known-benign findings by
// "RULE [OBJECT]" lines; waivers that match nothing are reported.
//
// Resilience flags: --deadline SEC arms a wall-clock budget — an expired
// run still prints every completed report, then exits 3; --on-net-failure
// MODE (fail-fast | quarantine | passthrough) picks what a per-net solver
// failure does to the rest of the run (see core/sna.hpp's NetFailurePolicy);
// --cache-strict turns cache-file problems (unreadable on load, unwritable
// on save) from warnings into a nonzero exit.
//
// Exit codes: 0 clean (waived findings and warnings included), 1 usage,
// I/O, or cache error, 2 unwaived lint (or front-end binding) errors,
// 3 deadline expired / cancelled (partial results printed), 4 per-net
// solver failures (quarantined/degraded cones printed).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/frontend.hpp"
#include "core/sna.hpp"
#include "interconnect/parallel_bus.hpp"
#include "lint/lint.hpp"
#include "parser/windows_parser.hpp"
#include "util/table.hpp"

namespace {

// Two chained stages (vic1 -> u_s2 -> vic2), each coupled to dedicated
// aggressor routes. Stage 1 is hammered by three strong aggressors; stage 2
// has moderate local coupling that only fails once stage 1's glitch rides
// along. (In production this file comes from the extractor.)
std::string chainSpef() {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"signoff_demo\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    const auto stage = [&](const std::string& net, const std::string& drv,
                           const std::string& load, int aggs, double cc) {
        os << "*D_NET " << net << " " << (6.5 + aggs * cc) << "\n";
        os << "*CONN\n*I " << drv << ":y O\n*I " << load << ":a I\n";
        os << "*CAP\n1 " << drv << ":y 2.0\n2 " << net << ":1 3.0\n";
        os << "3 " << load << ":a 1.5\n";
        for (int a = 0; a < aggs; ++a) {
            os << (4 + a) << " " << net << ":1 " << net << "_g" << a
               << ":1 " << cc << "\n";
        }
        os << "*RES\n1 " << drv << ":y " << net << ":1 60\n";
        os << "2 " << net << ":1 " << load << ":a 60\n*END\n\n";
        for (int a = 0; a < aggs; ++a) {
            const std::string g = net + "_g" + std::to_string(a);
            os << "*D_NET " << g << " 6.0\n";
            os << "*CONN\n*I " << g << "_d:y O\n*I " << g << "_r:a I\n";
            os << "*CAP\n1 " << g << "_d:y 2.0\n2 " << g << ":1 2.0\n";
            os << "*RES\n1 " << g << "_d:y " << g << ":1 40\n";
            os << "2 " << g << ":1 " << g << "_r:a 40\n*END\n\n";
        }
    };
    stage("vic1", "u_s1", "u_s2", 3, 35.0);
    stage("vic2", "u_s2", "u_s3", 3, 12.0);
    return os.str();
}

bool readFile(const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

// Placeholder extractor for front-end runs without a SPEF: every wire net
// with a driver and loads becomes an RC pi (the demo's geometry), and
// consecutive wire declarations couple at their middle nodes — enough
// deterministic coupling to exercise the full flow, not a substitute for
// extracted parasitics.
std::string synthesizeSpef(const sna::parser::VerilogModule& module,
                           const sna::core::Design& design) {
    using sna::core::Instance;
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"" << module.name << "\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    std::string prev;
    for (const auto& net : module.wires) {
        const Instance* driver = design.driverOf(net);
        const auto loads = design.loadsOf(net);
        if (driver == nullptr || loads.empty()) continue;
        const std::string drvPin = driver->name + ":y";
        const double coupling = prev.empty() ? 0.0 : 20.0;
        os << "*D_NET " << net << " "
           << (5.0 + 1.5 * loads.size() + coupling) << "\n*CONN\n";
        os << "*I " << drvPin << " O\n";
        for (const auto& [inst, pin] : loads) {
            os << "*I " << inst->name << ":" << pin << " I\n";
        }
        os << "*CAP\n1 " << drvPin << " 2.0\n2 " << net << ":1 3.0\n";
        int idx = 2;
        for (const auto& [inst, pin] : loads) {
            os << ++idx << " " << inst->name << ":" << pin << " 1.5\n";
        }
        if (!prev.empty()) {
            os << ++idx << " " << net << ":1 " << prev << ":1 20.0\n";
        }
        os << "*RES\n1 " << drvPin << " " << net << ":1 60\n";
        idx = 1;
        for (const auto& [inst, pin] : loads) {
            os << ++idx << " " << net << ":1 " << inst->name << ":" << pin
               << " 60\n";
        }
        os << "*END\n\n";
        prev = net;
    }
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sna;
    std::string cachePath;
    std::string waiversPath;
    std::string libPath, verilogPath, sdcPath, spefPath;
    lint::Mode lintMode = lint::Mode::off;
    bool cacheStrict = false;
    double deadlineSec = 0.0;
    core::NetFailurePolicy onNetFailure = core::NetFailurePolicy::failFast;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
            cachePath = argv[++i];
        } else if (std::strcmp(argv[i], "--cache-strict") == 0) {
            cacheStrict = true;
        } else if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
            char* end = nullptr;
            deadlineSec = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || deadlineSec <= 0.0) {
                std::fprintf(stderr,
                             "--deadline needs a positive number of "
                             "seconds, got '%s'\n",
                             argv[i]);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--on-net-failure") == 0 &&
                   i + 1 < argc) {
            const char* mode = argv[++i];
            if (std::strcmp(mode, "fail-fast") == 0) {
                onNetFailure = core::NetFailurePolicy::failFast;
            } else if (std::strcmp(mode, "quarantine") == 0) {
                onNetFailure = core::NetFailurePolicy::quarantineCone;
            } else if (std::strcmp(mode, "passthrough") == 0) {
                onNetFailure = core::NetFailurePolicy::degradeToPassthrough;
            } else {
                std::fprintf(stderr,
                             "--on-net-failure wants fail-fast, quarantine, "
                             "or passthrough, got '%s'\n",
                             mode);
                return 1;
            }
        } else if (std::strcmp(argv[i], "--lint") == 0) {
            lintMode = lint::Mode::warn;
        } else if (std::strcmp(argv[i], "--lint=strict") == 0) {
            lintMode = lint::Mode::strict;
        } else if (std::strcmp(argv[i], "--waivers") == 0 && i + 1 < argc) {
            waiversPath = argv[++i];
        } else if (std::strcmp(argv[i], "--lib") == 0 && i + 1 < argc) {
            libPath = argv[++i];
        } else if (std::strcmp(argv[i], "--verilog") == 0 && i + 1 < argc) {
            verilogPath = argv[++i];
        } else if (std::strcmp(argv[i], "--sdc") == 0 && i + 1 < argc) {
            sdcPath = argv[++i];
        } else if (std::strcmp(argv[i], "--spef") == 0 && i + 1 < argc) {
            spefPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--cache FILE] [--cache-strict] "
                         "[--deadline SEC] [--on-net-failure "
                         "fail-fast|quarantine|passthrough] "
                         "[--lint[=strict]] [--waivers FILE] "
                         "[--lib FILE --verilog FILE "
                         "[--sdc FILE] [--spef FILE]]\n",
                         argv[0]);
            return 1;
        }
    }
    const bool frontEnd = !libPath.empty() || !verilogPath.empty();
    if (frontEnd && (libPath.empty() || verilogPath.empty())) {
        std::fprintf(stderr,
                     "front-end mode needs both --lib and --verilog\n");
        return 1;
    }
    const cell::CellLibrary lib(tech::tech130());

    std::vector<parser::Waiver> waivers;
    if (!waiversPath.empty()) {
        std::ifstream in(waiversPath);
        if (!in) {
            std::fprintf(stderr, "cannot read waiver file '%s'\n",
                         waiversPath.c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        try {
            waivers = parser::parseWaivers(text.str());
        } catch (const Error& e) {
            std::fprintf(stderr, "%s: %s\n", waiversPath.c_str(), e.what());
            return 1;
        }
    }

    charlib::CharCache cache;
    if (!cachePath.empty()) {
        const bool exists = static_cast<bool>(std::ifstream(cachePath));
        const auto loaded = cache.load(cachePath);
        if (exists && !loaded.ok && loaded.entries == 0) {
            // The file is there but nothing in it could be trusted — a
            // header mismatch, unreadable bytes, or wholesale corruption.
            // Starting cold silently would look like a cache regression, so
            // fail loud: the user either points at the right file or
            // deletes the broken one.
            std::fprintf(stderr,
                         "cache '%s' exists but is unreadable (%s); "
                         "delete it or pass a different --cache path\n",
                         cachePath.c_str(), loaded.error.c_str());
            return 1;
        }
        if (loaded.entries > 0) {
            std::printf("warm-started cache from '%s': %zu entries",
                        cachePath.c_str(), loaded.entries);
            if (loaded.corrupt > 0) {
                std::printf(" (%zu corrupt records dropped)",
                            loaded.corrupt);
            }
            std::printf("\n");
            if ((loaded.corrupt > 0 || !loaded.ok) && cacheStrict) {
                std::fprintf(stderr,
                             "cache '%s' was damaged and --cache-strict is "
                             "set\n",
                             cachePath.c_str());
                return 1;
            }
        } else if (!loaded.ok) {
            std::printf("cache '%s' not loaded (%s); starting cold\n",
                        cachePath.c_str(), loaded.error.c_str());
        }
    }

    core::Design design(lib);
    parser::SpefFile spef;
    core::TimingWindows windows;
    bool haveWindows = false;

    if (frontEnd) {
        // ---- industry front end: .lib + .v (+ .sdc, .spef) ----------------
        std::string libText, verilogText;
        if (!readFile(libPath, libText)) {
            std::fprintf(stderr, "cannot read '%s'\n", libPath.c_str());
            return 1;
        }
        if (!readFile(verilogPath, verilogText)) {
            std::fprintf(stderr, "cannot read '%s'\n", verilogPath.c_str());
            return 1;
        }
        parser::LibertyLibrary liberty;
        parser::VerilogModule module;
        parser::SdcConstraints sdc;
        bool haveSdc = false;
        try {
            liberty = parser::parseLiberty(libText);
            module = parser::parseVerilog(verilogText);
            if (!sdcPath.empty()) {
                std::string sdcText;
                if (!readFile(sdcPath, sdcText)) {
                    std::fprintf(stderr, "cannot read '%s'\n",
                                 sdcPath.c_str());
                    return 1;
                }
                sdc = parser::parseSdc(sdcText);
                haveSdc = true;
            }
        } catch (const Error& e) {
            std::fprintf(stderr, "front end: %s\n", e.what());
            return 1;
        }
        std::printf("parsed library '%s' (%zu cells), module '%s' "
                    "(%zu instances)%s\n",
                    liberty.name.c_str(), liberty.cells.size(),
                    module.name.c_str(), module.instances.size(),
                    haveSdc ? ", SDC constraints" : "");

        const charlib::NldmSource nldm(liberty, lib);
        lint::LintReport feReport;
        core::lintFrontEnd(nldm, module, lib, haveSdc ? &sdc : nullptr,
                           feReport);
        lint::applyWaivers(feReport, waivers);
        for (const auto& d : feReport.diagnostics) {
            std::printf("lint: %s\n", d.str().c_str());
        }
        std::printf("%s\n", feReport.summary().c_str());
        if (feReport.hasErrors()) {
            std::fprintf(stderr,
                         "front-end binding errors — refusing to analyze\n");
            return 2;
        }
        try {
            design = core::buildDesign(module, lib);
        } catch (const Error& e) {
            std::fprintf(stderr, "front end: %s\n", e.what());
            return 2;
        }

        std::string spefText;
        if (!spefPath.empty()) {
            if (!readFile(spefPath, spefText)) {
                std::fprintf(stderr, "cannot read '%s'\n", spefPath.c_str());
                return 1;
            }
        } else {
            spefText = synthesizeSpef(module, design);
        }
        try {
            spef = parser::parseSpef(spefText);
        } catch (const Error& e) {
            std::fprintf(stderr, "%s: %s\n",
                         spefPath.empty() ? "synthesized SPEF"
                                          : spefPath.c_str(),
                         e.what());
            return 1;
        }
        if (haveSdc) {
            windows = sdc.toInputWindows();
            haveWindows = true;
        }
        const std::size_t seeded = core::seedNldmCharacterization(nldm, cache);
        std::printf("seeded %zu NLDM thevenin models into the "
                    "characterization cache\n",
                    seeded);
    } else {
        spef = parser::parseSpef(chainSpef());

        // ---- the built-in demo design -------------------------------------
        auto inst = [&](const std::string& name, const std::string& cellName,
                        std::map<std::string, std::string> pins) {
            core::Instance i;
            i.name = name;
            i.cellName = cellName;
            i.pinToNet = std::move(pins);
            design.addInstance(std::move(i));
        };
        inst("u_s1", "INV_X1", {{"a", "in"}, {"y", "vic1"}});
        inst("u_s2", "INV_X1", {{"a", "vic1"}, {"y", "vic2"}});
        inst("u_s3", "INV_X2", {{"a", "vic2"}, {"y", "out"}});
        for (const std::string& v :
             {std::string("vic1"), std::string("vic2")}) {
            for (int a = 0; a < 3; ++a) {
                const std::string g = v + "_g" + std::to_string(a);
                inst(g + "_d", "INV_X4", {{"a", g + "_in"}, {"y", g}});
                // The SPEF routes each aggressor into a receiver pin
                // (g_r:a); instantiate it so the netlist matches the
                // parasitics — a driven net with no design receiver is
                // exactly what lint rule SNA-L102 flags. The aggressor nets
                // thereby become victim clusters of their own (they couple
                // back into the stage nets).
                inst(g + "_r", "INV_X1", {{"a", g}, {"y", g + "_o"}});
            }
        }

        // What an STA tool would export: the chain launches early (windows
        // propagate down vic1 -> vic2 from the primary input), stage 1's
        // aggressors collide with vic1, but stage 2's aggressors can only
        // switch in a much later slot — outside vic2's sensitivity interval.
        windows = parser::parseTimingWindows(
            "*T_UNIT 1 PS\n"
            "in       0    80\n"
            "vic2_g0  1600 1800\n"
            "vic2_g1  1600 1800\n"
            "vic2_g2  1600 1800\n");
        haveWindows = true;
    }
    std::printf("parsed SPEF '%s': %zu nets\n", spef.design().c_str(),
                spef.nets().size());

    // ---- run (worst alignment, no temporal information) --------------------
    core::DesignNoiseOptions opt;
    opt.propagate = true;
    opt.cache = &cache;
    opt.lint = lintMode;
    opt.lintWaivers = waivers.empty() ? nullptr : &waivers;
    opt.deadline = deadlineSec;
    opt.onNetFailure = onNetFailure;
    lint::LintReport lintReport;
    opt.lintOut = &lintReport;

    // Save is shared between the happy path and the partial-result exits:
    // even an expired run's characterizations are complete, reusable models.
    const auto saveCache = [&](void) -> bool {
        if (cachePath.empty()) return true;
        const auto saved = cache.save(cachePath);
        if (saved.ok) {
            std::printf("cache saved to '%s': %zu entries\n",
                        cachePath.c_str(), saved.entries);
            return true;
        }
        std::fprintf(stderr, "cache save failed: %s%s\n",
                     saved.error.c_str(),
                     cacheStrict ? "" : " (continuing; --cache-strict would "
                                        "make this fatal)");
        return false;
    };
    const auto printOutcome = [](const core::AnalysisOutcome& o) {
        if (o.reason == core::TerminationReason::deadlineExpired) {
            std::printf("analysis DEADLINE EXPIRED: %zu nets completed, "
                        "%zu unsolved\n",
                        o.reports.size(), o.unsolvedNets.size());
        } else if (o.reason == core::TerminationReason::cancelled) {
            std::printf("analysis CANCELLED: %zu nets completed, "
                        "%zu unsolved\n",
                        o.reports.size(), o.unsolvedNets.size());
        }
        if (!o.failedNets.empty() || !o.quarantinedNets.empty() ||
            !o.degradedNets.empty()) {
            std::printf("per-net failures: %zu failed, %zu quarantined, "
                        "%zu degraded (pass-through)\n",
                        o.failedNets.size(), o.quarantinedNets.size(),
                        o.degradedNets.size());
            for (const auto& n : o.failedNets) {
                std::printf("  failed: %s\n", n.c_str());
            }
        }
    };

    core::AnalysisOutcome outcome;
    try {
        outcome = core::analyzeDesignOutcome(design, spef, opt);
    } catch (const lint::LintError& e) {
        for (const auto& d : e.report().diagnostics) {
            std::fprintf(stderr, "lint: %s\n", d.str().c_str());
        }
        std::fprintf(stderr, "%s — refusing to analyze (--lint=strict)\n",
                     e.report().summary().c_str());
        return 2;
    }
    const std::vector<core::NetNoiseReport>& reports = outcome.reports;
    bool lintFailed = false;
    if (lintMode != lint::Mode::off) {
        for (const auto& d : lintReport.diagnostics) {
            std::printf("lint: %s\n", d.str().c_str());
        }
        // Re-applying the waivers to a copy is idempotent; it returns the
        // waivers that matched nothing — each a stale entry worth pruning.
        lint::LintReport scratch = lintReport;
        for (const auto& w : lint::applyWaivers(scratch, waivers)) {
            std::printf("lint: unused waiver (line %d): %s %s\n", w.line,
                        w.rule.c_str(), w.object.c_str());
        }
        std::printf("%s\n\n", lintReport.summary().c_str());
        lintFailed = lintReport.hasErrors();
    }

    util::Table table({"Victim net", "Driver", "Incoming from",
                       "In height (V)", "Worst peak (V)", "NRC limit (V)",
                       "Local margin (V)", "Combined margin (V)", "Verdict"});
    for (const auto& r : reports) {
        const auto& m = r.cluster.worst.metrics;
        const auto& p = r.propagated;
        // Failed and quarantined nets carry stub metrics — their verdict
        // cell names the condition instead of pretending a margin exists.
        std::string verdict;
        switch (r.status) {
            case core::NetNoiseReport::Status::failed:
                verdict = "ERROR";
                break;
            case core::NetNoiseReport::Status::quarantined:
                verdict = "QUARANTINED";
                break;
            case core::NetNoiseReport::Status::degraded:
                verdict = r.cluster.fails ? "FAIL (degraded)"
                                          : "pass (degraded)";
                break;
            case core::NetNoiseReport::Status::ok:
                verdict = r.cluster.fails
                              ? (p.localFails ? "FAIL" : "FAIL (propagated)")
                              : "pass";
                break;
        }
        table.addRow({r.net, design.driverOf(r.net)->cellName,
                      p.present ? p.fromNet : "-",
                      p.present ? util::Table::num(p.height, 3) : "-",
                      util::Table::num(m.peak, 3),
                      util::Table::num(r.cluster.nrcLimit, 3),
                      util::Table::num(p.localMargin, 3),
                      util::Table::num(r.cluster.margin, 3), verdict});
    }
    std::printf("\nStatic noise analysis report (%zu coupled nets "
                "analyzed, propagation on)\n\n%s\n",
                reports.size(), table.str().c_str());
    printOutcome(outcome);
    if (!outcome.complete()) {
        // Deadline or cancellation: everything above is trustworthy, the
        // rest never ran. The cache still holds finished characterizations.
        saveCache();
        return 3;
    }

    // ---- run again with switching windows ----------------------------------
    // Demo mode hard-codes the windows an STA tool would export; front-end
    // mode seeds them from the SDC input delays (and skips this pass when no
    // --sdc was given — there is no temporal information to apply).
    if (haveWindows) {
        core::DesignNoiseOptions wopt = opt;
        wopt.windows = &windows;
        // The design was already linted (and gated) above; re-linting the
        // windowed pass would just repeat every finding.
        wopt.lint = lint::Mode::off;
        wopt.lintOut = nullptr;
        const core::AnalysisOutcome woutcome =
            core::analyzeDesignOutcome(design, spef, wopt);
        const auto& windowed = woutcome.reports;
        if (!woutcome.complete()) {
            printOutcome(woutcome);
            saveCache();
            return 3;
        }

        util::Table wtable({"Victim net", "Window (ps)",
                            "Unconstr margin (V)", "Windowed margin (V)",
                            "Excluded aggressors", "Dropped glitches",
                            "Verdict"});
        for (const auto& r : windowed) {
            const auto& w = r.windows;
            std::string excl;
            for (const auto& a : w.excludedAggressors) {
                excl += (excl.empty() ? "" : " ") + a;
            }
            std::string dropped;
            for (const auto& d : w.droppedIncoming) {
                dropped += (dropped.empty() ? "" : " ") + d;
            }
            wtable.addRow(
                {r.net,
                 "[" + util::Table::num(w.window.earliest * 1e12, 0) + ", " +
                     util::Table::num(w.window.latest * 1e12, 0) + "]",
                 util::Table::num(w.unconstrainedMargin, 3),
                 util::Table::num(w.windowedMargin, 3),
                 excl.empty() ? "-" : excl, dropped.empty() ? "-" : dropped,
                 r.cluster.fails ? "FAIL" : "pass"});
        }
        std::printf("With switching windows (FRAME-style temporal "
                    "correlation)\n\n%s\n",
                    wtable.str().c_str());
    }

    const auto s = cache.stats();
    std::printf("characterizations: %zu load curves, %zu thevenins, "
                "%zu NRCs, %zu propagation tables (%zu served from disk)\n",
                s.loadCurveRuns, s.theveninRuns, s.nrcRuns,
                s.propagationRuns, s.totalDiskHits());
    const bool saveOk = saveCache();
    // Non-zero exit after the full report printed: unwaived lint errors
    // (warn mode analyzes anyway but still fails the signoff gate) beat
    // per-net solver failures beat a strict-mode cache-save problem.
    if (lintFailed) return 2;
    if (!outcome.failedNets.empty() || !outcome.quarantinedNets.empty())
        return 4;
    if (!saveOk && cacheStrict) return 1;
    return 0;
}

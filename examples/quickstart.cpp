// Quickstart: analyze one noise cluster end to end.
//
// Builds the paper's main test case — a NAND2 victim driver holding its
// output low over 500 um of metal-4, one coupled inverter aggressor, and a
// noise glitch propagating through the victim — then:
//   1. characterizes and assembles the non-linear macromodel (Figure 1),
//   2. finds the worst-case aggressor/glitch alignment,
//   3. checks the result against the receiver's noise rejection curve,
//   4. cross-checks against full transistor-level simulation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/baselines.hpp"
#include "core/report.hpp"

int main() {
    using namespace sna;

    // ---- 1. describe the cluster -----------------------------------------
    core::ClusterSpec spec;
    spec.technology = &tech::tech130();
    spec.victim.driverCell = "NAND2_X1";
    spec.victim.glitchInput = "a";
    spec.victim.outputLevel = false;      // output held low
    spec.victim.glitchHeight = 0.7 * 1.2; // propagated noise at the input
    spec.victim.glitchWidth = 250e-12;
    spec.victim.receiverCell = "INV_X2";
    core::AggressorSpec agg;
    agg.driverCell = "INV_X1";
    agg.outputRising = true;
    spec.aggressors.push_back(agg);
    spec.layer = "M4";
    spec.lengthUm = 500.0;

    // ---- 2. characterize + assemble the macromodel ------------------------
    const core::ClusterMacromodel model(spec);
    std::printf("%s\n", model.describe().c_str());

    // ---- 3. worst-case analysis + NRC check -------------------------------
    const auto report = core::analyzeCluster(spec);
    const auto& m = report.worst.metrics;
    std::printf("worst-case combined noise at the victim driving point:\n");
    std::printf("  peak  %.3f V at t = %.0f ps\n", m.peak, m.peakTime * 1e12);
    std::printf("  area  %.1f V*ps, width %.0f ps\n", m.area * 1e12,
                m.width * 1e12);
    std::printf("  NRC limit at this width: %.3f V -> %s (margin %+.3f V)\n",
                report.nrcLimit, report.fails ? "FAIL" : "pass",
                report.margin);

    // ---- 4. sanity: compare with the golden transistor-level run ----------
    core::ClusterSpec goldenSpec = spec;
    goldenSpec.aggressors[0].switchTime = report.aggressorSwitchTimes[0];
    goldenSpec.victim.glitchTime = report.glitchTime;
    const auto golden = core::simulateGolden(goldenSpec);
    std::printf("\ngolden simulation at the same alignment: peak %.3f V "
                "(macromodel error %+.1f%%), %zu-node circuit vs %zu, "
                "%.1fx faster\n",
                golden.metrics.peak,
                100.0 * (m.peak - golden.metrics.peak) / golden.metrics.peak,
                golden.engineNodes, report.worst.engineNodes,
                golden.runtimeSec / report.worst.runtimeSec);
    return 0;
}

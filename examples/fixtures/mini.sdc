# Switching constraints for the signoff demo netlist: the victim chain
# launches right after the (virtual) clock edge, stage 2's aggressors can
# only switch in a much later slot. Seeds the same windows the hand-written
# windows file in the noise_signoff example supplies.
set_units -time ns
create_clock -period 2.5 -name clk

set_input_delay -clock clk -min 0    [get_ports {in}]
set_input_delay -clock clk -max 0.08 [get_ports {in}]

# Stage-1 aggressors collide with the victim's sensitivity interval.
set_input_delay -clock clk -min 0    [get_ports {vic1_g0_in vic1_g1_in vic1_g2_in}]
set_input_delay -clock clk -max 0.08 [get_ports {vic1_g0_in vic1_g1_in vic1_g2_in}]

# Stage-2 aggressors switch long after vic2 has settled.
set_input_delay -clock clk -min 1.6 \
    [get_ports {vic2_g0_in vic2_g1_in vic2_g2_in}]
set_input_delay -clock clk -max 1.8 \
    [get_ports {vic2_g0_in vic2_g1_in vic2_g2_in}]

// Gate-level netlist of the signoff demo: a two-stage inverter chain
// (in -> vic1 -> vic2 -> out) with three dedicated aggressor routes per
// stage, each driven by a strong INV_X4 and terminated in an INV_X1
// receiver. Matches examples/fixtures/mini.spef net for net.
module signoff_demo (in,
                     vic1_g0_in, vic1_g1_in, vic1_g2_in,
                     vic2_g0_in, vic2_g1_in, vic2_g2_in,
                     out,
                     vic1_g0_o, vic1_g1_o, vic1_g2_o,
                     vic2_g0_o, vic2_g1_o, vic2_g2_o);
  input in;
  input vic1_g0_in, vic1_g1_in, vic1_g2_in;
  input vic2_g0_in, vic2_g1_in, vic2_g2_in;
  output out;
  output vic1_g0_o, vic1_g1_o, vic1_g2_o;
  output vic2_g0_o, vic2_g1_o, vic2_g2_o;

  wire vic1, vic2;
  wire vic1_g0, vic1_g1, vic1_g2;
  wire vic2_g0, vic2_g1, vic2_g2;

  INV_X1 u_s1 (.A(in),   .Y(vic1));
  INV_X1 u_s2 (.A(vic1), .Y(vic2));
  INV_X2 u_s3 (.A(vic2), .Y(out));

  INV_X4 vic1_g0_d (.A(vic1_g0_in), .Y(vic1_g0));
  INV_X1 vic1_g0_r (.A(vic1_g0),    .Y(vic1_g0_o));
  INV_X4 vic1_g1_d (.A(vic1_g1_in), .Y(vic1_g1));
  INV_X1 vic1_g1_r (.A(vic1_g1),    .Y(vic1_g1_o));
  INV_X4 vic1_g2_d (.A(vic1_g2_in), .Y(vic1_g2));
  INV_X1 vic1_g2_r (.A(vic1_g2),    .Y(vic1_g2_o));

  INV_X4 vic2_g0_d (.A(vic2_g0_in), .Y(vic2_g0));
  INV_X1 vic2_g0_r (.A(vic2_g0),    .Y(vic2_g0_o));
  INV_X4 vic2_g1_d (.A(vic2_g1_in), .Y(vic2_g1));
  INV_X1 vic2_g1_r (.A(vic2_g1),    .Y(vic2_g1_o));
  INV_X4 vic2_g2_d (.A(vic2_g2_in), .Y(vic2_g2));
  INV_X1 vic2_g2_r (.A(vic2_g2),    .Y(vic2_g2_o));
endmodule

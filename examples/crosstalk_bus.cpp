// Scenario: a victim signal routed inside a bus, swept over coupling length.
//
// The classic motivation for static noise analysis: the same victim net is
// routed next to switching neighbors for an increasing distance. The
// example sweeps the parallel-run length, analyzes each cluster at its
// worst-case alignment with the non-linear macromodel, compares against the
// linear-superposition baseline, and reports where each analysis starts
// flagging NRC failures — showing how the classical analysis waves through
// nets that actually fail.
//
// Build & run:  ./build/examples/crosstalk_bus
#include <cstdio>

#include "core/baselines.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

int main() {
    using namespace sna;

    util::Table table({"Run length (um)", "Macromodel peak (V)",
                       "Superposition peak (V)", "NRC limit (V)",
                       "Macromodel verdict", "Superposition verdict"});

    for (const double lengthUm : {200.0, 400.0, 600.0, 800.0, 1000.0}) {
        core::ClusterSpec spec;
        spec.technology = &tech::tech130();
        spec.victim.driverCell = "NAND2_X1";
        spec.victim.glitchInput = "a";
        spec.victim.outputLevel = false;
        spec.victim.glitchHeight = 0.62 * 1.2;
        spec.victim.glitchWidth = 300e-12;
        spec.victim.receiverCell = "INV_X2";
        for (int a = 0; a < 2; ++a) {
            core::AggressorSpec agg;
            agg.driverCell = "INV_X4";  // strong neighbors
            agg.outputRising = true;
            spec.aggressors.push_back(agg);
        }
        spec.lengthUm = lengthUm;
        spec.tstop = 3e-9;

        const core::ClusterMacromodel model(spec);
        const auto align = core::findWorstAlignment(model);
        const auto& worst = align.worst;
        const auto b1 = core::analyzeLinearSuperposition(
            model, align.aggressorSwitchTimes);
        const double limit = core::nrcLimitFor(spec, worst.metrics);

        const bool macroFails = std::abs(worst.metrics.peak) >= limit;
        const bool b1Fails = std::abs(b1.metrics.peak) >= limit;
        table.addRow({util::Table::num(lengthUm, 0),
                      util::Table::num(worst.metrics.peak, 3),
                      util::Table::num(b1.metrics.peak, 3),
                      util::Table::num(limit, 3),
                      macroFails ? "FAIL" : "pass",
                      b1Fails ? "FAIL" : "pass"});
    }

    std::printf("Victim inside a switching bus, coupling-length sweep\n"
                "(NAND2_X1 victim held low + propagated glitch, two INV_X2 "
                "aggressors, M4, 0.13 um)\n\n%s\n", table.str().c_str());
    std::printf("reading: rows where the superposition verdict is 'pass' "
                "while the macromodel says 'FAIL' are exactly the silent "
                "functional failures the paper warns about.\n");
    return 0;
}
